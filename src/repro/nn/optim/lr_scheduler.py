"""Learning-rate schedules.

The paper's training recipes anneal the learning rate geometrically:
1e-4 → 1e-7 for detection (Section 6.1), 1e-3 → 1e-5 for SiamRPN++
(Section 7.1) and 1e-3 → 1e-4 for SiamMask (Section 7.2).
:class:`ExponentialDecay` reproduces exactly that kind of schedule.
"""

from __future__ import annotations

import math

__all__ = ["ExponentialDecay", "StepDecay", "CosineDecay"]


class _Scheduler:
    def __init__(self, optimizer, total_steps: int) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.total_steps = total_steps
        self.step_count = 0
        self.base_lr = optimizer.lr

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step; set and return the new learning rate."""
        self.step_count = min(self.step_count + 1, self.total_steps)
        lr = self.lr_at(self.step_count)
        self.optimizer.lr = lr
        return lr

    def state_dict(self) -> dict:
        """Schedule position (JSON-safe; the optimizer holds the lr)."""
        return {"step_count": self.step_count, "base_lr": self.base_lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore the schedule position saved by :meth:`state_dict`.

        The learning rate itself is not recomputed here: the optimizer's
        checkpoint is authoritative for the current lr (an anomaly guard
        may have backed it off below the schedule).
        """
        self.step_count = int(state["step_count"])
        self.base_lr = float(state.get("base_lr", self.base_lr))


class ExponentialDecay(_Scheduler):
    """Geometric interpolation from the optimizer's lr down to ``final_lr``."""

    def __init__(self, optimizer, total_steps: int, final_lr: float) -> None:
        super().__init__(optimizer, total_steps)
        if final_lr <= 0:
            raise ValueError("final_lr must be positive")
        self.final_lr = final_lr

    def lr_at(self, step: int) -> float:
        frac = step / self.total_steps
        return self.base_lr * (self.final_lr / self.base_lr) ** frac


class StepDecay(_Scheduler):
    """Multiply lr by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer, total_steps: int, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer, total_steps)
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class CosineDecay(_Scheduler):
    """Cosine annealing from base lr to ``min_lr``."""

    def __init__(self, optimizer, total_steps: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer, total_steps)
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        frac = step / self.total_steps
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * frac)
        )
