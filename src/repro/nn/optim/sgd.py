"""Stochastic gradient descent with momentum and weight decay.

The paper trains SkyNet with SGD and a learning rate annealed from 1e-4
down to 1e-7 (Section 6.1); pair this optimizer with
:class:`repro.nn.optim.lr_scheduler.ExponentialDecay` to reproduce that
schedule.
"""

from __future__ import annotations

import numpy as np

from ..module import Parameter

__all__ = ["SGD"]


class SGD:
    """Classic SGD: ``v = mu*v - lr*g``; ``p += v``."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            v *= self.momentum
            v -= self.lr * g
            p.data += v

    # ------------------------------------------------------------------ #
    # checkpointing (see repro.resilience.checkpoint)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Full optimizer state: hyperparameters + momentum buffers."""
        state: dict = {"lr": self.lr, "momentum": self.momentum,
                       "weight_decay": self.weight_decay}
        for i, v in enumerate(self._velocity):
            state[f"velocity/{i}"] = v.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore state saved by :meth:`state_dict` (shapes must match)."""
        self.lr = float(state["lr"])
        self.momentum = float(state["momentum"])
        self.weight_decay = float(state["weight_decay"])
        for i, v in enumerate(self._velocity):
            saved = np.asarray(state[f"velocity/{i}"])
            if saved.shape != v.shape:
                raise ValueError(
                    f"velocity/{i} shape mismatch: saved {saved.shape}, "
                    f"optimizer has {v.shape}"
                )
            v[...] = saved
