"""Adam optimizer (Kingma & Ba, 2015)."""

from __future__ import annotations

import numpy as np

from ..module import Parameter

__all__ = ["Adam"]


class Adam:
    """Adam with optional decoupled weight decay (AdamW when set)."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            mhat = m / bc1
            vhat = v / bc2
            if self.weight_decay:
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * mhat / (np.sqrt(vhat) + self.eps)

    # ------------------------------------------------------------------ #
    # checkpointing (see repro.resilience.checkpoint)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Full optimizer state: hyperparameters, step count, moments."""
        state: dict = {"lr": self.lr, "beta1": self.beta1,
                       "beta2": self.beta2, "eps": self.eps,
                       "weight_decay": self.weight_decay, "t": self._t}
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m/{i}"] = m.copy()
            state[f"v/{i}"] = v.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore state saved by :meth:`state_dict` (shapes must match)."""
        self.lr = float(state["lr"])
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self.weight_decay = float(state["weight_decay"])
        self._t = int(state["t"])
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            for tag, buf in (("m", m), ("v", v)):
                saved = np.asarray(state[f"{tag}/{i}"])
                if saved.shape != buf.shape:
                    raise ValueError(
                        f"{tag}/{i} shape mismatch: saved {saved.shape}, "
                        f"optimizer has {buf.shape}"
                    )
                buf[...] = saved
