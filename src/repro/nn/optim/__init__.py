"""Optimizers and learning-rate schedules."""

from .adam import Adam
from .lr_scheduler import CosineDecay, ExponentialDecay, StepDecay
from .sgd import SGD

__all__ = ["SGD", "Adam", "ExponentialDecay", "StepDecay", "CosineDecay"]
