"""``repro.nn`` — a compact NumPy deep-learning substrate.

Provides reverse-mode autodiff (:class:`Tensor`), a layer library
(convolutions, batch norm, pooling, reorg, ...), optimizers, and model
serialization.  Every model in this reproduction — SkyNet itself, the
baseline backbone zoo, and the Siamese trackers — is built on it.
"""

from . import engine, functional, init, layers, optim
from .gradcheck import gradcheck, numerical_gradient
from .module import Module, ModuleList, Parameter, Sequential
from .serialization import load_model, save_model
from .tensor import Tensor, as_tensor, no_grad

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "engine",
    "functional",
    "init",
    "layers",
    "optim",
    "gradcheck",
    "numerical_gradient",
    "save_model",
    "load_model",
]
