"""Dropout regularization (used by the AlexNet classifier head)."""

from __future__ import annotations

import numpy as np

from ...utils.rng import default_rng
from ..module import Module
from ..tensor import Tensor

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout: active in train mode, identity in eval mode.

    Kept elements are scaled by ``1 / (1 - p)`` so the expected
    activation is unchanged and no rescaling is needed at inference.
    """

    def __init__(self, p: float = 0.5,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = default_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = (self._rng.uniform(size=x.shape) >= self.p).astype(
            x.data.dtype
        ) / (1.0 - self.p)
        return x * Tensor(keep)
