"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from ...utils.rng import default_rng
from .. import functional as F
from ..init import kaiming_uniform
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["Linear", "Flatten"]


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with x (N, in_features)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = default_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(kaiming_uniform((out_features, in_features), rng))
        self.bias = (
            Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def macs(self) -> int:
        return self.in_features * self.out_features


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)
