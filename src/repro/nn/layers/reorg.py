"""Feature-map reordering (space-to-depth) layer — Fig. 5 of the paper."""

from __future__ import annotations

from .. import functional as F
from ..module import Module
from ..tensor import Tensor

__all__ = ["Reorg", "UpsampleNearest"]


class Reorg(Module):
    """Rearrange (N, C, H, W) into (N, C*s*s, H/s, W/s) losslessly.

    SkyNet uses this on the bypass path so low-level, high-resolution
    features can be concatenated with post-pooling feature maps without
    the information loss a pooling op would introduce, while also
    enlarging the effective receptive field.
    """

    def __init__(self, stride: int = 2) -> None:
        super().__init__()
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.reorg(x, self.stride)


class UpsampleNearest(Module):
    """Nearest-neighbour upsampling (used by the SiamMask mask head)."""

    def __init__(self, scale: int = 2) -> None:
        super().__init__()
        self.scale = scale

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample_nearest(x, self.scale)
