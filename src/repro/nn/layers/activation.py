"""Activation layers.

Activations are where intermediate feature maps materialize, so they are
also the attachment point for feature-map fake-quantization (see
:mod:`repro.nn.quant_hooks`): when a quantization context is active, each
activation output is passed through the installed hook.
"""

from __future__ import annotations

from ..module import Module
from ..quant_hooks import apply_fm_hook, get_fm_hook
from ..tensor import Tensor

__all__ = ["ReLU", "ReLU6", "LeakyReLU", "Sigmoid", "Tanh", "make_activation"]


def _hook(t: Tensor) -> Tensor:
    if get_fm_hook() is None:
        return t
    return Tensor(apply_fm_hook(t.data))


class ReLU(Module):
    """Rectified linear unit, ``max(x, 0)``."""

    def forward(self, x: Tensor) -> Tensor:
        return _hook(x.relu())


class ReLU6(Module):
    """ReLU clipped to [0, 6].

    SkyNet's Stage-3 feature addition: the bounded output range means
    intermediate feature maps need fewer bits on FPGAs and map well to
    low-precision float on embedded GPUs (Sandler et al., 2018).
    """

    def forward(self, x: Tensor) -> Tensor:
        return _hook(x.relu6())


class LeakyReLU(Module):
    def __init__(self, slope: float = 0.1) -> None:
        super().__init__()
        self.slope = slope

    def forward(self, x: Tensor) -> Tensor:
        return _hook(x.leaky_relu(self.slope))


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


_ACTIVATIONS = {
    "relu": ReLU,
    "relu6": ReLU6,
    "leaky_relu": LeakyReLU,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
}


def make_activation(name: str) -> Module:
    """Instantiate an activation layer by name (``'relu'``, ``'relu6'``...)."""
    try:
        return _ACTIVATIONS[name]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}"
        ) from None
