"""Normalization layers."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["BatchNorm2d"]


class BatchNorm2d(Module):
    """Batch normalization (Ioffe & Szegedy, 2015) over NCHW channels.

    Keeps running mean/variance buffers used at evaluation time; these are
    also what the FPGA deployment path folds into the preceding
    convolution when quantizing.
    """

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(channels, dtype=np.float32))
        self.beta = Parameter(np.zeros(channels, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(channels, dtype=np.float32))
        self.register_buffer("running_var", np.ones(channels, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def fold_scale_shift(self) -> tuple[np.ndarray, np.ndarray]:
        """Return per-channel (scale, shift) equivalent at inference time.

        ``y = scale * x + shift`` reproduces this layer in eval mode; used
        by the quantization pipeline to fold BN into conv weights.
        """
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        scale = self.gamma.data * inv_std
        shift = self.beta.data - self.running_mean * scale
        return scale, shift
