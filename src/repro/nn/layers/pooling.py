"""Pooling layers."""

from __future__ import annotations

from .. import functional as F
from ..module import Module
from ..tensor import Tensor

__all__ = ["MaxPool2d", "AvgPool2d", "GlobalAvgPool2d"]


class MaxPool2d(Module):
    """Max pooling; SkyNet uses 2x2/stride-2 instances between Bundles."""

    def __init__(self, kernel: int = 2, stride: int | None = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = kernel if stride is None else stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel: int = 2, stride: int | None = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = kernel if stride is None else stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel, self.stride)


class GlobalAvgPool2d(Module):
    """(N, C, H, W) -> (N, C) spatial mean."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)
