"""Convolution layers: standard, depthwise, and pointwise."""

from __future__ import annotations

import numpy as np

from ...utils.rng import default_rng
from .. import functional as F
from ..init import kaiming_normal
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["Conv2d", "ConvTranspose2d", "DWConv3x3", "GroupedConv2d", "PWConv1x1"]


class Conv2d(Module):
    """2-D convolution layer.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel:
        Square kernel size.
    stride, pad:
        Convolution stride and symmetric zero padding.
    bias:
        Whether to learn an additive bias (disabled when followed by BN).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        pad: int | None = None,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = default_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = kernel // 2 if pad is None else pad
        self.weight = Parameter(
            kaiming_normal((out_channels, in_channels, kernel, kernel), rng)
        )
        self.bias = (
            Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.pad)

    def macs(self, h: int, w: int) -> int:
        """Multiply-accumulate count for an input of spatial size (h, w)."""
        oh = (h + 2 * self.pad - self.kernel) // self.stride + 1
        ow = (w + 2 * self.pad - self.kernel) // self.stride + 1
        return (
            oh * ow * self.out_channels * self.in_channels * self.kernel**2
        )


class DWConv3x3(Module):
    """3x3 depthwise convolution — one half of the SkyNet Bundle.

    Depthwise-separable structure (Howard et al., 2017) reduces MACs by
    roughly ``k^2`` relative to a standard conv of the same shape.
    """

    def __init__(
        self,
        channels: int,
        stride: int = 1,
        kernel: int = 3,
        bias: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = default_rng(rng)
        self.channels = channels
        self.kernel = kernel
        self.stride = stride
        self.pad = kernel // 2
        self.weight = Parameter(
            kaiming_normal((channels, 1, kernel, kernel), rng)
        )
        self.bias = Parameter(np.zeros(channels, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.depthwise_conv2d(x, self.weight, self.bias, self.stride, self.pad)

    def macs(self, h: int, w: int) -> int:
        oh = (h + 2 * self.pad - self.kernel) // self.stride + 1
        ow = (w + 2 * self.pad - self.kernel) // self.stride + 1
        return oh * ow * self.channels * self.kernel**2


class GroupedConv2d(Module):
    """Grouped convolution (AlexNet's original 2-group trick, ShuffleNet).

    Input and output channels are split into ``groups`` independent
    convolutions; parameters and MACs shrink by the group count.
    Depthwise convolution is the ``groups == channels`` extreme (use
    :class:`DWConv3x3` for that case — it has a faster kernel).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        groups: int = 2,
        stride: int = 1,
        pad: int | None = None,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"channels ({in_channels}->{out_channels}) must divide "
                f"evenly into {groups} groups"
            )
        rng = default_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.groups = groups
        self.kernel = kernel
        self.stride = stride
        # Resolve 'same' padding once and hand every per-group Conv2d the
        # resolved value: the sub-convs must never re-derive it, so an
        # explicit ``pad`` (including 0) and ``pad=None`` behave
        # identically at the group level and the layer level.
        self.pad = kernel // 2 if pad is None else pad
        self.convs = []
        for g in range(groups):
            conv = Conv2d(
                in_channels // groups,
                out_channels // groups,
                kernel,
                stride=stride,
                pad=self.pad,
                bias=bias,
                rng=rng,
            )
            self.add_module(f"group{g}", conv)
            self.convs.append(conv)

    def forward(self, x: Tensor) -> Tensor:
        from ..tensor import Tensor as T

        step = self.in_channels // self.groups
        outs = [
            conv(x[:, g * step : (g + 1) * step])
            for g, conv in enumerate(self.convs)
        ]
        return T.concat(outs, axis=1)

    def macs(self, h: int, w: int) -> int:
        return sum(conv.macs(h, w) for conv in self.convs)


class PWConv1x1(Conv2d):
    """1x1 pointwise convolution — the other half of the SkyNet Bundle."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        bias: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(
            in_channels, out_channels, kernel=1, stride=1, pad=0, bias=bias, rng=rng
        )


class ConvTranspose2d(Module):
    """Transposed convolution layer (learned upsampling).

    Output spatial size is ``(in - 1) * stride - 2 * pad + kernel``; with
    ``kernel = 2 * stride`` and ``pad = stride // 2`` it doubles the
    resolution cleanly, the configuration the SiamMask-style mask head
    can use instead of nearest-neighbour upsampling.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 4,
        stride: int = 2,
        pad: int = 1,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = default_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.weight = Parameter(
            kaiming_normal((in_channels, out_channels, kernel, kernel), rng)
        )
        self.bias = (
            Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv_transpose2d(
            x, self.weight, self.bias, self.stride, self.pad
        )

    def out_size(self, size: int) -> int:
        return (size - 1) * self.stride - 2 * self.pad + self.kernel
