"""Layer library for the ``repro.nn`` substrate."""

from .activation import (
    LeakyReLU,
    ReLU,
    ReLU6,
    Sigmoid,
    Tanh,
    make_activation,
)
from .conv import Conv2d, ConvTranspose2d, DWConv3x3, GroupedConv2d, PWConv1x1
from .dropout import Dropout
from .linear import Flatten, Linear
from .norm import BatchNorm2d
from .pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from .reorg import Reorg, UpsampleNearest

__all__ = [
    "Conv2d",
    "ConvTranspose2d",
    "Dropout",
    "DWConv3x3",
    "GroupedConv2d",
    "PWConv1x1",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "make_activation",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Linear",
    "Flatten",
    "Reorg",
    "UpsampleNearest",
]
