"""im2col / col2im transformations used by the convolution primitives.

These helpers express 2-D convolution as a single matrix multiplication,
the standard approach for CPU implementations (vectorized, BLAS-backed).
All arrays are NCHW.
"""

from __future__ import annotations

import numpy as np

__all__ = ["conv_out_size", "im2col", "col2im"]


def conv_out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * pad - kernel) // stride + 1


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Unfold ``x`` (N, C, H, W) into columns of shape (N, C*kh*kw, OH*OW).

    Uses ``sliding_window_view`` so the unfold itself allocates no copies;
    only the final reshape materializes the column matrix.
    """
    n, c, h, w = x.shape
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = conv_out_size(h, kh, stride, pad)
    ow = conv_out_size(w, kw, stride, pad)
    # windows: (N, C, OH', OW', kh, kw) before striding
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    # -> (N, C, kh, kw, OH, OW) -> (N, C*kh*kw, OH*OW)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, oh * ow)
    # Reshaping the transposed window view already copies into C order
    # for any kernel larger than 1x1; only defend against the degenerate
    # cases where reshape can return a non-contiguous view.
    if cols.flags["C_CONTIGUOUS"]:
        return cols
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Fold columns back into an image, accumulating overlapping windows.

    Inverse (adjoint) of :func:`im2col`; used for convolution input
    gradients.
    """
    n, c, h, w = x_shape
    oh = conv_out_size(h, kh, stride, pad)
    ow = conv_out_size(w, kw, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            out[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j]
    if pad > 0:
        out = out[:, :, pad:-pad, pad:-pad]
    return out
