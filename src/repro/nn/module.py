"""Module base class: parameter management, train/eval mode, state dicts."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList", "HookHandle"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a learnable parameter."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class HookHandle:
    """Removal token returned by ``register_*_hook``.

    Calling :meth:`remove` detaches the hook; removing twice is a no-op.
    """

    _next_id = 0

    def __init__(self, hooks: "OrderedDict[int, object]") -> None:
        self._hooks = hooks
        self.id = HookHandle._next_id
        HookHandle._next_id += 1

    def remove(self) -> None:
        self._hooks.pop(self.id, None)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and ``Module`` instances as
    attributes; they are discovered automatically for ``parameters()``,
    ``state_dict()`` and mode switching.  Buffers (non-learnable state such
    as batch-norm running statistics) are registered via
    :meth:`register_buffer`.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_forward_pre_hooks", OrderedDict())
        object.__setattr__(self, "_forward_hooks", OrderedDict())
        object.__setattr__(self, "_backward_hooks", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mname, m in self._modules.items():
            yield from m.named_parameters(prefix=f"{prefix}{mname}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield (f"{prefix}{name}", getattr(self, name))
        for mname, m in self._modules.items():
            yield from m.named_buffers(prefix=f"{prefix}{mname}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for m in self._modules.values():
            yield from m.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` pairs, the root first as ``''``."""
        yield prefix, self
        for name, m in self._modules.items():
            child = f"{prefix}.{name}" if prefix else name
            yield from m.named_modules(prefix=child)

    def num_parameters(self) -> int:
        """Total learnable parameter count."""
        return sum(p.size for p in self.parameters())

    def parameter_bytes(self, bytes_per_element: int = 4) -> int:
        """Model size in bytes at the given precision (default fp32)."""
        return self.num_parameters() * bytes_per_element

    # ------------------------------------------------------------------ #
    # mode
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            object.__setattr__(m, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------ #
    # state dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        state: OrderedDict[str, np.ndarray] = OrderedDict()
        for name, p in self.named_parameters():
            state[name] = p.data
        for name, b in self.named_buffers():
            state[name] = b
        return state

    def load_state_dict(self, state: dict) -> None:
        own = dict(self.named_parameters())
        missing = []
        for name, p in own.items():
            if name not in state:
                missing.append(name)
                continue
            arr = np.asarray(state[name])
            if arr.shape != p.shape:
                raise ValueError(
                    f"shape mismatch for {name}: saved {arr.shape}, "
                    f"model {p.shape}"
                )
            p.data = arr.astype(p.data.dtype, copy=True)
        for name, buf in self.named_buffers():
            if name in state:
                np.copyto(buf, np.asarray(state[name]))
        if missing:
            raise KeyError(f"missing parameters in state dict: {missing}")

    # ------------------------------------------------------------------ #
    # hooks
    # ------------------------------------------------------------------ #
    def register_forward_pre_hook(self, hook) -> HookHandle:
        """Call ``hook(module, inputs)`` before every forward.

        Returning a tuple (or a single value) replaces the positional
        inputs; returning ``None`` leaves them untouched.
        """
        handle = HookHandle(self._forward_pre_hooks)
        self._forward_pre_hooks[handle.id] = hook
        return handle

    def register_forward_hook(self, hook) -> HookHandle:
        """Call ``hook(module, inputs, output)`` after every forward.

        A non-``None`` return value replaces the output.
        """
        handle = HookHandle(self._forward_hooks)
        self._forward_hooks[handle.id] = hook
        return handle

    def register_backward_hook(self, hook) -> HookHandle:
        """Call ``hook(module, grad_output)`` when the gradient w.r.t.
        this module's output is computed during ``backward()``.

        Only fires for forwards that return a single grad-requiring
        :class:`Tensor` (the common case for layers).  A non-``None``
        return value replaces the gradient flowing into the module.
        """
        handle = HookHandle(self._backward_hooks)
        self._backward_hooks[handle.id] = hook
        return handle

    def _attach_backward_hooks(self, out):
        if not isinstance(out, Tensor) or not out.requires_grad:
            return out
        hooks = tuple(self._backward_hooks.values())

        def backward(g: np.ndarray):
            for hook in hooks:
                replacement = hook(self, g)
                if replacement is not None:
                    g = np.asarray(replacement)
            return (g,)

        return Tensor._make(out.data, (out,), backward)

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        if self._forward_pre_hooks:
            for hook in tuple(self._forward_pre_hooks.values()):
                replacement = hook(self, args)
                if replacement is not None:
                    args = (
                        replacement
                        if isinstance(replacement, tuple)
                        else (replacement,)
                    )
        out = self.forward(*args, **kwargs)
        if self._forward_hooks:
            for hook in tuple(self._forward_hooks.values()):
                replacement = hook(self, args, out)
                if replacement is not None:
                    out = replacement
        if self._backward_hooks:
            out = self._attach_backward_hooks(out)
        return out


class Sequential(Module):
    """Chain modules, feeding each output to the next module's input."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._seq: list[Module] = []
        for i, m in enumerate(modules):
            self.add_module(str(i), m)
            self._seq.append(m)

    def append(self, module: Module) -> "Sequential":
        self.add_module(str(len(self._seq)), module)
        self._seq.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._seq)

    def __len__(self) -> int:
        return len(self._seq)

    def __getitem__(self, idx: int) -> Module:
        return self._seq[idx]

    def forward(self, x):
        for m in self._seq:
            x = m(x)
        return x


class ModuleList(Module):
    """A list of modules whose parameters are registered."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: list[Module] = []
        for m in modules:
            self.append(m)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._items)), module)
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]
