"""Module base class: parameter management, train/eval mode, state dicts."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a learnable parameter."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and ``Module`` instances as
    attributes; they are discovered automatically for ``parameters()``,
    ``state_dict()`` and mode switching.  Buffers (non-learnable state such
    as batch-norm running statistics) are registered via
    :meth:`register_buffer`.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mname, m in self._modules.items():
            yield from m.named_parameters(prefix=f"{prefix}{mname}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield (f"{prefix}{name}", getattr(self, name))
        for mname, m in self._modules.items():
            yield from m.named_buffers(prefix=f"{prefix}{mname}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for m in self._modules.values():
            yield from m.modules()

    def num_parameters(self) -> int:
        """Total learnable parameter count."""
        return sum(p.size for p in self.parameters())

    def parameter_bytes(self, bytes_per_element: int = 4) -> int:
        """Model size in bytes at the given precision (default fp32)."""
        return self.num_parameters() * bytes_per_element

    # ------------------------------------------------------------------ #
    # mode
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            object.__setattr__(m, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------ #
    # state dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        state: OrderedDict[str, np.ndarray] = OrderedDict()
        for name, p in self.named_parameters():
            state[name] = p.data
        for name, b in self.named_buffers():
            state[name] = b
        return state

    def load_state_dict(self, state: dict) -> None:
        own = dict(self.named_parameters())
        missing = []
        for name, p in own.items():
            if name not in state:
                missing.append(name)
                continue
            arr = np.asarray(state[name])
            if arr.shape != p.shape:
                raise ValueError(
                    f"shape mismatch for {name}: saved {arr.shape}, "
                    f"model {p.shape}"
                )
            p.data = arr.astype(p.data.dtype, copy=True)
        for name, buf in self.named_buffers():
            if name in state:
                np.copyto(buf, np.asarray(state[name]))
        if missing:
            raise KeyError(f"missing parameters in state dict: {missing}")

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain modules, feeding each output to the next module's input."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._seq: list[Module] = []
        for i, m in enumerate(modules):
            self.add_module(str(i), m)
            self._seq.append(m)

    def append(self, module: Module) -> "Sequential":
        self.add_module(str(len(self._seq)), module)
        self._seq.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._seq)

    def __len__(self) -> int:
        return len(self._seq)

    def __getitem__(self, idx: int) -> Module:
        return self._seq[idx]

    def forward(self, x):
        for m in self._seq:
            x = m(x)
        return x


class ModuleList(Module):
    """A list of modules whose parameters are registered."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: list[Module] = []
        for m in modules:
            self.append(m)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._items)), module)
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]
