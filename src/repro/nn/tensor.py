"""Reverse-mode automatic differentiation over NumPy arrays.

This module provides the :class:`Tensor` class, the foundation of the
``repro.nn`` deep-learning substrate.  A ``Tensor`` wraps a ``numpy.ndarray``
and records the operations applied to it so that gradients can later be
propagated with :meth:`Tensor.backward`.

Design notes
------------
* Data layout for images is NCHW throughout the library.
* The graph is built eagerly: each op returns a new ``Tensor`` holding a
  closure that knows how to push gradients to its parents.
* Broadcasting is supported for elementwise ops; gradients are summed back
  to the parent shape by :func:`unbroadcast`.
* Heavy ops (convolution, pooling) live in :mod:`repro.nn.functional` as
  primitives with hand-written backward passes built on im2col.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "unbroadcast", "as_tensor"]


_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction.

    Used during evaluation and inference so that forward passes do not
    accumulate autograd metadata.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether autograd graph construction is currently enabled."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    Parameters
    ----------
    grad:
        Gradient of the broadcasted result.
    shape:
        Shape of the original (pre-broadcast) operand.
    """
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64``/``float32`` ndarray
        (dtype is preserved if already floating).
    requires_grad:
        If ``True``, gradients w.r.t. this tensor are accumulated into
        :attr:`grad` during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = "") -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but severed from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a graph node if any parent requires grad."""
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` (allocating on first use)."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------------ #
    # backward
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient; defaults to ones (only valid for scalars when
            omitted on a multi-element tensor it still uses ones, matching
            the common "sum of outputs" convention used in tests).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order via iterative DFS (graphs can be deep).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            node._accumulate(g)
            if node._backward is None:
                continue
            parent_grads = node._backward(g)
            for parent, pg in zip(node._parents, parent_grads):
                if pg is None or not parent.requires_grad:
                    continue
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pg
                else:
                    grads[id(parent)] = pg

    # ------------------------------------------------------------------ #
    # elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        data = self.data + other.data

        def backward(g: np.ndarray):
            return (unbroadcast(g, self.shape), unbroadcast(g, other.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray):
            return (-g,)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        data = self.data - other.data

        def backward(g: np.ndarray):
            return (unbroadcast(g, self.shape), unbroadcast(-g, other.shape))

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        data = self.data * other.data
        a, b = self, other

        def backward(g: np.ndarray):
            return (
                unbroadcast(g * b.data, a.shape),
                unbroadcast(g * a.data, b.shape),
            )

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        data = self.data / other.data
        a, b = self, other

        def backward(g: np.ndarray):
            return (
                unbroadcast(g / b.data, a.shape),
                unbroadcast(-g * a.data / (b.data**2), b.shape),
            )

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        data = self.data**exponent

        def backward(g: np.ndarray):
            return (g * exponent * self.data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # unary math
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(g: np.ndarray):
            return (g * data,)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(g: np.ndarray):
            return (g / self.data,)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(g: np.ndarray):
            return (g / (2.0 * data),)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        def backward(g: np.ndarray):
            return (g * np.sign(self.data),)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: np.ndarray):
            return (g * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(g: np.ndarray):
            return (g * (1.0 - data**2),)

        return Tensor._make(data, (self,), backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        """Clamp values to ``[lo, hi]``; gradient is passed inside the range."""
        data = np.clip(self.data, lo, hi)
        mask = (self.data >= lo) & (self.data <= hi)

        def backward(g: np.ndarray):
            return (g * mask,)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g: np.ndarray):
            return (g * mask,)

        return Tensor._make(self.data * mask, (self,), backward)

    def relu6(self) -> "Tensor":
        """ReLU clipped to [0, 6] (Sandler et al. 2018), used by SkyNet."""
        return self.clip(0.0, 6.0)

    def leaky_relu(self, slope: float = 0.1) -> "Tensor":
        mask = self.data > 0
        coef = np.where(mask, 1.0, slope)

        def backward(g: np.ndarray):
            return (g * coef,)

        return Tensor._make(self.data * coef, (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        in_shape = self.shape

        def backward(g: np.ndarray):
            if axis is None:
                return (np.broadcast_to(g, in_shape).copy(),)
            axes = axis if isinstance(axis, tuple) else (axis,)
            if not keepdims:
                g = np.expand_dims(g, axes)
            return (np.broadcast_to(g, in_shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        n = self.size if axis is None else np.prod(
            [self.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(n))

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            if axis is None:
                full = data
                gg = g
            else:
                axes = axis if isinstance(axis, tuple) else (axis,)
                full = data if keepdims else np.expand_dims(data, axes)
                gg = g if keepdims else np.expand_dims(g, axes)
            mask = self.data == full
            # distribute evenly across ties
            counts = mask.sum(
                axis=axis if axis is not None else None, keepdims=True
            )
            return (mask * gg / counts,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # shape ops
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        in_shape = self.shape
        data = self.data.reshape(shape)

        def backward(g: np.ndarray):
            return (g.reshape(in_shape),)

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inv = np.argsort(axes)

        def backward(g: np.ndarray):
            return (g.transpose(inv),)

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, idx) -> "Tensor":
        data = self.data[idx]
        in_shape = self.shape
        dtype = self.data.dtype

        def backward(g: np.ndarray):
            full = np.zeros(in_shape, dtype=dtype)
            np.add.at(full, idx, g)
            return (full,)

        return Tensor._make(data, (self,), backward)

    def pad2d(self, pad: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions by ``pad`` on each side."""
        if pad == 0:
            return self
        width = [(0, 0)] * (self.ndim - 2) + [(pad, pad), (pad, pad)]
        data = np.pad(self.data, width)

        def backward(g: np.ndarray):
            sl = tuple(
                [slice(None)] * (self.ndim - 2)
                + [slice(pad, -pad), slice(pad, -pad)]
            )
            return (g[sl],)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # linear algebra
    # ------------------------------------------------------------------ #
    def matmul(self, other) -> "Tensor":
        other = as_tensor(other)
        data = self.data @ other.data
        a, b = self, other

        def backward(g: np.ndarray):
            ga = g @ np.swapaxes(b.data, -1, -2)
            gb = np.swapaxes(a.data, -1, -2) @ g
            return (unbroadcast(ga, a.shape), unbroadcast(gb, b.shape))

        return Tensor._make(data, (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape, requires_grad: bool = False, dtype=np.float32) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False, dtype=np.float32) -> "Tensor":
        return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        splits = np.cumsum(sizes)[:-1]

        def backward(g: np.ndarray):
            return tuple(np.split(g, splits, axis=axis))

        return Tensor._make(data, tensors, backward)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)
