"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so that model
construction is fully reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_normal", "kaiming_uniform", "xavier_uniform", "fan_in_out"]


def fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for a linear or convolutional weight."""
    if len(shape) == 2:  # (out, in)
        return shape[1], shape[0]
    if len(shape) == 4:  # (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He-normal initialization (good default for ReLU networks)."""
    fan_in, _ = fan_in_out(shape)
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He-uniform initialization."""
    fan_in, _ = fan_in_out(shape)
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialization (good for tanh/sigmoid heads)."""
    fan_in, fan_out = fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)
