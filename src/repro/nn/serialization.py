"""Model checkpointing to ``.npz`` files."""

from __future__ import annotations

import os

import numpy as np

from .module import Module

__all__ = ["save_model", "load_model"]


def save_model(model: Module, path: str) -> None:
    """Write a model's full state dict (parameters + buffers) to ``path``."""
    state = model.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **{k: np.asarray(v) for k, v in state.items()})


def load_model(model: Module, path: str) -> Module:
    """Load a state dict saved with :func:`save_model` into ``model``."""
    with np.load(path) as data:
        model.load_state_dict({k: data[k] for k in data.files})
    return model
