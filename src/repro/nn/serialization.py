"""Model checkpointing to ``.npz`` files.

Two reliability guarantees beyond a bare ``np.savez``:

* **Path normalization** — ``np.savez`` silently appends ``.npz`` when
  the target lacks it, so ``save_model(m, "ckpt")`` used to write
  ``ckpt.npz`` while ``load_model(m, "ckpt")`` looked for ``ckpt``.
  Both entry points now normalize the path identically, so the path a
  caller passed always round-trips.
* **Atomic writes** — the state dict is serialized in memory and
  published via tmp + fsync + rename
  (:func:`repro.utils.atomic.atomic_write_bytes`), so a crash mid-save
  can no longer corrupt the existing checkpoint.  For checksummed,
  resumable full-training-state checkpoints, see
  :class:`repro.resilience.CheckpointManager`.
"""

from __future__ import annotations

import io

import numpy as np

from ..utils.atomic import atomic_write_bytes
from .module import Module

__all__ = ["save_model", "load_model"]


def _normalize(path: str) -> str:
    """The path ``np.savez`` would actually write: always ``.npz``."""
    return path if path.endswith(".npz") else path + ".npz"


def save_model(model: Module, path: str) -> None:
    """Write a model's full state dict (parameters + buffers) to ``path``
    (``.npz`` appended when missing), atomically."""
    state = model.state_dict()
    buf = io.BytesIO()
    np.savez(buf, **{k: np.asarray(v) for k, v in state.items()})
    atomic_write_bytes(_normalize(path), buf.getvalue())


def load_model(model: Module, path: str) -> Module:
    """Load a state dict saved with :func:`save_model` into ``model``
    (accepts the same path ``save_model`` was given, with or without
    the ``.npz`` extension)."""
    with np.load(_normalize(path)) as data:
        model.load_state_dict({k: data[k] for k in data.files})
    return model
