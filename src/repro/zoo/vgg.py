"""VGG-16 backbone (Simonyan & Zisserman, 2014) — Table 2 baseline.

Thirteen 3x3 convolutions; 14.71 M conv parameters at ``width_mult=1``,
matching Table 2.  The detection variant keeps only the first three
pooling stages (stride 8) so the back-end grid matches the other
backbones; the remaining conv blocks run at full grid resolution.
"""

from __future__ import annotations

import numpy as np

from ..hardware.descriptor import LayerDesc, NetDescriptor
from ..nn import Tensor
from ..nn.layers import BatchNorm2d, Conv2d, MaxPool2d, ReLU
from ..nn.module import Module, ModuleList
from ..utils.rng import default_rng

__all__ = ["VGGBackbone", "vgg16"]

# (channels, n_convs) per block; 'M' pooling after each block.
_VGG16_BLOCKS = ((64, 2), (128, 2), (256, 3), (512, 3), (512, 3))


class VGGBackbone(Module):
    """VGG-16 conv trunk truncated at stride 8 for detection."""

    stride = 8

    def __init__(
        self,
        width_mult: float = 1.0,
        in_channels: int = 3,
        batch_norm: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = default_rng(rng)
        self.width_mult = width_mult
        self.in_channels = in_channels
        self.batch_norm = batch_norm
        self.convs = ModuleList()
        self.bns = ModuleList() if batch_norm else None
        self.relu = ReLU()
        self._plan: list[tuple[str, int, int]] = []  # (op, in_ch, out_ch)

        cur = in_channels
        for bi, (ch, n) in enumerate(_VGG16_BLOCKS):
            out = max(4, int(round(ch * width_mult)))
            for _ in range(n):
                self.convs.append(Conv2d(cur, out, 3, bias=not batch_norm, rng=rng))
                if batch_norm:
                    self.bns.append(BatchNorm2d(out))
                self._plan.append(("conv", cur, out))
                cur = out
            if bi < 3:  # only three poolings -> stride 8
                self._plan.append(("pool", cur, cur))
        self.pool = MaxPool2d(2)
        self.out_channels = cur

    def forward(self, x: Tensor) -> Tensor:
        ci = 0
        for op, _, _ in self._plan:
            if op == "pool":
                x = self.pool(x)
            else:
                x = self.convs[ci](x)
                if self.batch_norm:
                    x = self.bns[ci](x)
                x = self.relu(x)
                ci += 1
        return x

    def layer_descriptors(self, input_hw: tuple[int, int]) -> NetDescriptor:
        h, w = input_hw
        layers: list[LayerDesc] = []
        i = 0
        for op, cin, cout in self._plan:
            if op == "pool":
                layers.append(LayerDesc("pool", cin, cin, h, w, 2, 2, f"pool{i}"))
                h, w = h // 2, w // 2
            else:
                layers.append(LayerDesc("conv", cin, cout, h, w, 3, 1, f"conv{i}"))
                if self.batch_norm:
                    layers.append(LayerDesc("bn", cout, cout, h, w, name=f"bn{i}"))
                layers.append(LayerDesc("act", cout, cout, h, w, name=f"relu{i}"))
                i += 1
        return NetDescriptor(layers, name="VGG-16")


def vgg16(width_mult: float = 1.0, rng=None) -> VGGBackbone:
    """The original VGG-16 (no batch norm, as in the paper's Table 2)."""
    return VGGBackbone(width_mult, batch_norm=False, rng=rng)
