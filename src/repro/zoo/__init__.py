"""Baseline backbone zoo (Table 1 / Table 2 / Table 8 reference DNNs)."""

from .alexnet import AlexNetBackbone, AlexNetClassifier, alexnet_backbone
from .mobilenet import MobileNetBackbone, mobilenet
from .registry import BACKBONES, backbone_names, build_backbone
from .resnet import ResNetBackbone, resnet18, resnet34, resnet50
from .shufflenet import ShuffleNetBackbone, channel_shuffle, shufflenet
from .squeezenet import FireModule, SqueezeNetBackbone, squeezenet
from .tinyyolo import TinyYoloBackbone, tinyyolo
from .vgg import VGGBackbone, vgg16

__all__ = [
    "AlexNetBackbone",
    "AlexNetClassifier",
    "alexnet_backbone",
    "MobileNetBackbone",
    "mobilenet",
    "ResNetBackbone",
    "resnet18",
    "resnet34",
    "resnet50",
    "ShuffleNetBackbone",
    "shufflenet",
    "channel_shuffle",
    "SqueezeNetBackbone",
    "FireModule",
    "squeezenet",
    "TinyYoloBackbone",
    "tinyyolo",
    "VGGBackbone",
    "vgg16",
    "BACKBONES",
    "build_backbone",
    "backbone_names",
]
