"""AlexNet (Krizhevsky et al., 2012).

Used twice in the paper:

* Figure 2(a): the quantization-sensitivity study compresses AlexNet's
  parameters (237.9 MB fp32 -> 10.8 MB fixed point, 22x) and feature
  maps (15.7 MB -> 0.98 MB, 16x) — that needs the *classifier* variant
  with its three FC layers, :class:`AlexNetClassifier`.
* Table 8: AlexNet is a SiamRPN++ backbone on GOT-10K — that needs the
  conv-trunk variant, :class:`AlexNetBackbone`.
"""

from __future__ import annotations

import numpy as np

from ..hardware.descriptor import LayerDesc, NetDescriptor
from ..nn import Tensor
from ..nn.layers import Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU
from ..nn.module import Module
from ..utils.rng import default_rng

__all__ = ["AlexNetBackbone", "AlexNetClassifier", "alexnet_backbone"]

# (out_ch, kernel, stride, pad) of the five conv layers.
_CONVS = (
    (64, 11, 4, 2),
    (192, 5, 1, 2),
    (384, 3, 1, 1),
    (256, 3, 1, 1),
    (256, 3, 1, 1),
)


def _trunk_out_size(size: int) -> int:
    """Spatial size after the conv trunk (conv1 s4/p2 + two 2x2 pools)."""
    s = (size + 2 * 2 - 11) // 4 + 1  # conv1
    s = s // 2  # pool1
    s = s // 2  # pool2 (convs 2-5 are 'same')
    return s


class AlexNetBackbone(Module):
    """AlexNet conv trunk (pool after conv1, conv2, conv5)."""

    stride = 16

    def __init__(
        self,
        width_mult: float = 1.0,
        in_channels: int = 3,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = default_rng(rng)
        self.width_mult = width_mult
        self.in_channels = in_channels
        ch = [max(4, int(round(c * width_mult))) for c, *_ in _CONVS]
        self._ch = ch
        cur = in_channels
        self.conv1 = Conv2d(cur, ch[0], 11, stride=4, pad=2, rng=rng)
        self.conv2 = Conv2d(ch[0], ch[1], 5, pad=2, rng=rng)
        self.conv3 = Conv2d(ch[1], ch[2], 3, rng=rng)
        self.conv4 = Conv2d(ch[2], ch[3], 3, rng=rng)
        self.conv5 = Conv2d(ch[3], ch[4], 3, rng=rng)
        self.pool = MaxPool2d(2)
        self.relu = ReLU()
        self.out_channels = ch[4]

    def forward(self, x: Tensor) -> Tensor:
        x = self.pool(self.relu(self.conv1(x)))
        x = self.pool(self.relu(self.conv2(x)))
        x = self.relu(self.conv3(x))
        x = self.relu(self.conv4(x))
        x = self.relu(self.conv5(x))
        return x

    def layer_descriptors(self, input_hw: tuple[int, int]) -> NetDescriptor:
        h, w = input_hw
        ch = self._ch
        layers = [LayerDesc("conv", self.in_channels, ch[0], h, w, 11, 4, "conv1")]
        h, w = (h + 4 - 11) // 4 + 1, (w + 4 - 11) // 4 + 1
        layers.append(LayerDesc("pool", ch[0], ch[0], h, w, 2, 2, "pool1"))
        h, w = h // 2, w // 2
        layers.append(LayerDesc("conv", ch[0], ch[1], h, w, 5, 1, "conv2"))
        layers.append(LayerDesc("pool", ch[1], ch[1], h, w, 2, 2, "pool2"))
        h, w = h // 2, w // 2
        layers.append(LayerDesc("conv", ch[1], ch[2], h, w, 3, 1, "conv3"))
        layers.append(LayerDesc("conv", ch[2], ch[3], h, w, 3, 1, "conv4"))
        layers.append(LayerDesc("conv", ch[3], ch[4], h, w, 3, 1, "conv5"))
        return NetDescriptor(layers, name="AlexNet")


class AlexNetClassifier(Module):
    """Full AlexNet with the three FC layers (Fig. 2a study).

    At ``width_mult=1`` and 224x224 input the parameter size is ~244 MB
    in fp32, dominated by the first FC layer — which is exactly why the
    paper's parameter-compression bubble (Fig. 2a blue) shrinks 22x while
    accuracy barely moves, but feature-map compression (green) is the
    sensitive direction.
    """

    def __init__(
        self,
        num_classes: int = 1000,
        width_mult: float = 1.0,
        input_hw: tuple[int, int] = (224, 224),
        in_channels: int = 3,
        dropout: float = 0.5,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = default_rng(rng)
        self.features = AlexNetBackbone(width_mult, in_channels, rng=rng)
        self.final_pool = MaxPool2d(2)
        self.flatten = Flatten()
        self.relu = ReLU()
        self.input_hw = input_hw
        # spatial size after conv trunk + the final pool (224 -> 6x6,
        # matching the canonical 9216-input first FC layer)
        fh = _trunk_out_size(input_hw[0]) // 2
        fw = _trunk_out_size(input_hw[1]) // 2
        if fh < 1 or fw < 1:
            raise ValueError(f"input {input_hw} too small for AlexNet")
        feat = self.features.out_channels * fh * fw
        hidden = max(8, int(round(4096 * width_mult)))
        self.drop1 = Dropout(dropout, rng=rng)
        self.fc1 = Linear(feat, hidden, rng=rng)
        self.drop2 = Dropout(dropout, rng=rng)
        self.fc2 = Linear(hidden, hidden, rng=rng)
        self.fc3 = Linear(hidden, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        x = self.final_pool(self.features(x))
        x = self.flatten(x)
        x = self.relu(self.fc1(self.drop1(x)))
        x = self.relu(self.fc2(self.drop2(x)))
        return self.fc3(x)

    def layer_descriptors(self) -> NetDescriptor:
        base = self.features.layer_descriptors(self.input_hw)
        layers = list(base)
        last = layers[-1]
        h, w = last.out_h // 2, last.out_w // 2
        feat = self.features.out_channels * h * w
        layers.append(
            LayerDesc("pool", last.out_ch, last.out_ch, last.out_h, last.out_w,
                      2, 2, "pool5")
        )
        layers.append(LayerDesc("linear", feat, self.fc1.out_features, 1, 1,
                                name="fc1"))
        layers.append(LayerDesc("linear", self.fc1.out_features,
                                self.fc2.out_features, 1, 1, name="fc2"))
        layers.append(LayerDesc("linear", self.fc2.out_features,
                                self.num_classes, 1, 1, name="fc3"))
        return NetDescriptor(layers, name="AlexNet-classifier")


def alexnet_backbone(width_mult: float = 1.0, rng=None) -> AlexNetBackbone:
    return AlexNetBackbone(width_mult, rng=rng)
