"""Tiny-YOLO-style backbone (Redmon & Farhadi, 2017).

The plain conv/pool chain that several DAC-SDC GPU-track winners started
from (Table 1: ICT-CAS, DeepZ, DeepZS).  Truncated at stride 8 for the
shared detection back-end.
"""

from __future__ import annotations

import numpy as np

from ..hardware.descriptor import LayerDesc, NetDescriptor
from ..nn import Tensor
from ..nn.layers import BatchNorm2d, Conv2d, LeakyReLU, MaxPool2d
from ..nn.module import Module, ModuleList
from ..utils.rng import default_rng

__all__ = ["TinyYoloBackbone", "tinyyolo"]

# (out_ch, pool_after) for the conv chain; three pools -> stride 8.
_PLAN = ((16, True), (32, True), (64, True), (128, False), (256, False))


class TinyYoloBackbone(Module):
    """Tiny-YOLO conv/pool trunk with leaky-ReLU activations."""

    stride = 8

    def __init__(
        self,
        width_mult: float = 1.0,
        in_channels: int = 3,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = default_rng(rng)
        self.width_mult = width_mult
        self.in_channels = in_channels
        self.convs = ModuleList()
        self.bns = ModuleList()
        self.act = LeakyReLU(0.1)
        self.pool = MaxPool2d(2)
        self._plan: list[tuple[int, int, bool]] = []
        cur = in_channels
        for ch, pool_after in _PLAN:
            out = max(4, int(round(ch * width_mult)))
            self.convs.append(Conv2d(cur, out, 3, bias=False, rng=rng))
            self.bns.append(BatchNorm2d(out))
            self._plan.append((cur, out, pool_after))
            cur = out
        self.out_channels = cur

    def forward(self, x: Tensor) -> Tensor:
        for conv, bn, (_, _, pool_after) in zip(self.convs, self.bns, self._plan):
            x = self.act(bn(conv(x)))
            if pool_after:
                x = self.pool(x)
        return x

    def layer_descriptors(self, input_hw: tuple[int, int]) -> NetDescriptor:
        h, w = input_hw
        layers: list[LayerDesc] = []
        for i, (cin, cout, pool_after) in enumerate(self._plan):
            layers.append(LayerDesc("conv", cin, cout, h, w, 3, 1, f"conv{i}"))
            layers.append(LayerDesc("bn", cout, cout, h, w, name=f"bn{i}"))
            layers.append(LayerDesc("act", cout, cout, h, w, name=f"lrelu{i}"))
            if pool_after:
                layers.append(LayerDesc("pool", cout, cout, h, w, 2, 2,
                                        f"pool{i}"))
                h, w = h // 2, w // 2
        return NetDescriptor(layers, name="TinyYOLO")


def tinyyolo(width_mult: float = 1.0, rng=None) -> TinyYoloBackbone:
    return TinyYoloBackbone(width_mult, rng=rng)
