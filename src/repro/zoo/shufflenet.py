"""ShuffleNet-V2-style backbone (Zhang et al., 2018b).

Channel-split units with channel shuffle; the Thinker and XJTU Tripler
contest entries (Table 1) built on ShuffleNet.  Truncated at stride 8.
"""

from __future__ import annotations

import numpy as np

from ..hardware.descriptor import LayerDesc, NetDescriptor
from ..nn import Tensor
from ..nn.layers import BatchNorm2d, Conv2d, DWConv3x3, PWConv1x1, ReLU
from ..nn.module import Module, ModuleList
from ..utils.rng import default_rng

__all__ = ["ShuffleNetBackbone", "shufflenet", "channel_shuffle"]


def channel_shuffle(x: Tensor, groups: int = 2) -> Tensor:
    """Interleave channels across ``groups`` (the ShuffleNet shuffle)."""
    n, c, h, w = x.shape
    if c % groups:
        raise ValueError(f"channels {c} not divisible by groups {groups}")
    return (
        x.reshape(n, groups, c // groups, h, w)
        .transpose(0, 2, 1, 3, 4)
        .reshape(n, c, h, w)
    )


class _ShuffleUnit(Module):
    """Basic (stride-1) ShuffleNet-V2 unit with channel split."""

    def __init__(self, channels: int, rng) -> None:
        super().__init__()
        if channels % 2:
            raise ValueError("ShuffleUnit needs an even channel count")
        half = channels // 2
        self.half = half
        self.pw1 = PWConv1x1(half, half, rng=rng)
        self.bn1 = BatchNorm2d(half)
        self.dw = DWConv3x3(half, rng=rng)
        self.bn2 = BatchNorm2d(half)
        self.pw2 = PWConv1x1(half, half, rng=rng)
        self.bn3 = BatchNorm2d(half)
        self.relu = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        left = x[:, : self.half]
        right = x[:, self.half :]
        right = self.relu(self.bn1(self.pw1(right)))
        right = self.bn2(self.dw(right))
        right = self.relu(self.bn3(self.pw2(right)))
        out = Tensor.concat([left, right], axis=1)
        return channel_shuffle(out, 2)


class _DownUnit(Module):
    """Stride-2 ShuffleNet-V2 unit (both branches downsample)."""

    def __init__(self, in_ch: int, out_ch: int, rng) -> None:
        super().__init__()
        half = out_ch // 2
        self.l_dw = DWConv3x3(in_ch, stride=2, rng=rng)
        self.l_bn1 = BatchNorm2d(in_ch)
        self.l_pw = PWConv1x1(in_ch, half, rng=rng)
        self.l_bn2 = BatchNorm2d(half)
        self.r_pw1 = PWConv1x1(in_ch, half, rng=rng)
        self.r_bn1 = BatchNorm2d(half)
        self.r_dw = DWConv3x3(half, stride=2, rng=rng)
        self.r_bn2 = BatchNorm2d(half)
        self.r_pw2 = PWConv1x1(half, half, rng=rng)
        self.r_bn3 = BatchNorm2d(half)
        self.relu = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        left = self.relu(self.l_bn2(self.l_pw(self.l_bn1(self.l_dw(x)))))
        right = self.relu(self.r_bn1(self.r_pw1(x)))
        right = self.r_bn2(self.r_dw(right))
        right = self.relu(self.r_bn3(self.r_pw2(right)))
        return channel_shuffle(Tensor.concat([left, right], axis=1), 2)


class ShuffleNetBackbone(Module):
    """ShuffleNet-V2 trunk truncated at stride 8."""

    stride = 8

    def __init__(
        self,
        width_mult: float = 1.0,
        in_channels: int = 3,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = default_rng(rng)
        self.width_mult = width_mult
        self.in_channels = in_channels

        def even(c: float) -> int:
            return max(4, 2 * int(round(c * width_mult / 2)))

        stem_ch = even(24)
        s2_ch, s3_ch = even(116), even(232)
        self._chs = (stem_ch, s2_ch, s3_ch)
        self.stem = Conv2d(in_channels, stem_ch, 3, stride=2, bias=False, rng=rng)
        self.stem_bn = BatchNorm2d(stem_ch)
        self.relu = ReLU()
        self.units = ModuleList()
        self._plan: list[tuple[str, int, int]] = []
        cur = stem_ch
        for out_ch, n_units in ((s2_ch, 3), (s3_ch, 3)):
            self.units.append(_DownUnit(cur, out_ch, rng))
            self._plan.append(("down", cur, out_ch))
            cur = out_ch
            for _ in range(n_units):
                self.units.append(_ShuffleUnit(cur, rng))
                self._plan.append(("unit", cur, cur))
        self.out_channels = cur

    def forward(self, x: Tensor) -> Tensor:
        x = self.relu(self.stem_bn(self.stem(x)))
        for unit in self.units:
            x = unit(x)
        return x

    def layer_descriptors(self, input_hw: tuple[int, int]) -> NetDescriptor:
        h, w = input_hw
        stem_ch = self._chs[0]
        layers = [LayerDesc("conv", self.in_channels, stem_ch, h, w, 3, 2, "stem")]
        h, w = (h + 1) // 2, (w + 1) // 2
        layers.append(LayerDesc("bn", stem_ch, stem_ch, h, w, name="stem_bn"))
        def conv_bn(kind, cin, cout, hh, ww, k, s, name):
            return [
                LayerDesc(kind, cin, cout, hh, ww, k, s, name),
                LayerDesc("bn", cout, cout, hh // s, ww // s, name=f"{name}.bn"),
            ]

        for i, (kind, cin, cout) in enumerate(self._plan):
            half_out = cout // 2
            if kind == "down":
                layers += conv_bn("dwconv", cin, cin, h, w, 3, 2, f"u{i}.l_dw")
                layers += conv_bn("pwconv", cin, half_out, h // 2, w // 2, 1, 1,
                                  f"u{i}.l_pw")
                layers += conv_bn("pwconv", cin, half_out, h, w, 1, 1,
                                  f"u{i}.r_pw1")
                layers += conv_bn("dwconv", half_out, half_out, h, w, 3, 2,
                                  f"u{i}.r_dw")
                layers += conv_bn("pwconv", half_out, half_out, h // 2, w // 2,
                                  1, 1, f"u{i}.r_pw2")
                h, w = h // 2, w // 2
            else:
                half = cin // 2
                layers += conv_bn("pwconv", half, half, h, w, 1, 1, f"u{i}.pw1")
                layers += conv_bn("dwconv", half, half, h, w, 3, 1, f"u{i}.dw")
                layers += conv_bn("pwconv", half, half, h, w, 1, 1, f"u{i}.pw2")
        return NetDescriptor(layers, name="ShuffleNetV2")


def shufflenet(width_mult: float = 1.0, rng=None) -> ShuffleNetBackbone:
    return ShuffleNetBackbone(width_mult, rng=rng)
