"""MobileNet-style backbone (Howard et al., 2017).

Depthwise-separable chain; a DAC-SDC winning-entry ingredient (Table 1,
iSmart2 = MobileNet + YOLO head).  Truncated at stride 8 for the shared
detection back-end.
"""

from __future__ import annotations

import numpy as np

from ..hardware.descriptor import LayerDesc, NetDescriptor
from ..nn import Tensor
from ..nn.layers import BatchNorm2d, Conv2d, DWConv3x3, PWConv1x1, ReLU
from ..nn.module import Module, ModuleList
from ..utils.rng import default_rng

__all__ = ["MobileNetBackbone", "mobilenet"]

# (out_ch, stride) of each depthwise-separable block after the stem.
_BLOCKS = (
    (64, 1),
    (128, 2),  # -> stride 4
    (128, 1),
    (256, 2),  # -> stride 8
    (256, 1),
    (512, 1),
    (512, 1),
    (512, 1),
)


class _DWSeparable(Module):
    def __init__(self, in_ch: int, out_ch: int, stride: int, rng) -> None:
        super().__init__()
        self.dw = DWConv3x3(in_ch, stride=stride, rng=rng)
        self.bn1 = BatchNorm2d(in_ch)
        self.pw = PWConv1x1(in_ch, out_ch, rng=rng)
        self.bn2 = BatchNorm2d(out_ch)
        self.relu = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        x = self.relu(self.bn1(self.dw(x)))
        return self.relu(self.bn2(self.pw(x)))


class MobileNetBackbone(Module):
    """MobileNet-v1-style trunk at stride 8."""

    stride = 8

    def __init__(
        self,
        width_mult: float = 1.0,
        in_channels: int = 3,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = default_rng(rng)
        self.width_mult = width_mult
        self.in_channels = in_channels
        stem_ch = max(4, int(round(32 * width_mult)))
        self.stem = Conv2d(in_channels, stem_ch, 3, stride=2, bias=False, rng=rng)
        self.stem_bn = BatchNorm2d(stem_ch)
        self.relu = ReLU()
        self.blocks = ModuleList()
        self._plan: list[tuple[int, int, int]] = []
        cur = stem_ch
        for ch, s in _BLOCKS:
            out = max(4, int(round(ch * width_mult)))
            self.blocks.append(_DWSeparable(cur, out, s, rng))
            self._plan.append((cur, out, s))
            cur = out
        self.out_channels = cur

    def forward(self, x: Tensor) -> Tensor:
        x = self.relu(self.stem_bn(self.stem(x)))
        for blk in self.blocks:
            x = blk(x)
        return x

    def layer_descriptors(self, input_hw: tuple[int, int]) -> NetDescriptor:
        h, w = input_hw
        stem_ch = self._plan[0][0]
        layers = [
            LayerDesc("conv", self.in_channels, stem_ch, h, w, 3, 2, "stem"),
        ]
        h, w = (h + 1) // 2, (w + 1) // 2
        layers.append(LayerDesc("bn", stem_ch, stem_ch, h, w, name="stem_bn"))
        layers.append(LayerDesc("act", stem_ch, stem_ch, h, w, name="stem_relu"))
        for i, (cin, cout, s) in enumerate(self._plan):
            layers.append(LayerDesc("dwconv", cin, cin, h, w, 3, s, f"b{i}.dw"))
            h, w = (h + s - 1) // s, (w + s - 1) // s
            layers.append(LayerDesc("bn", cin, cin, h, w, name=f"b{i}.bn1"))
            layers.append(LayerDesc("act", cin, cin, h, w, name=f"b{i}.relu1"))
            layers.append(LayerDesc("pwconv", cin, cout, h, w, name=f"b{i}.pw"))
            layers.append(LayerDesc("bn", cout, cout, h, w, name=f"b{i}.bn2"))
            layers.append(LayerDesc("act", cout, cout, h, w, name=f"b{i}.relu2"))
        return NetDescriptor(layers, name="MobileNet")


def mobilenet(width_mult: float = 1.0, rng=None) -> MobileNetBackbone:
    return MobileNetBackbone(width_mult, rng=rng)
