"""Backbone registry: build any backbone by name.

Used by the Table 2 bench ("same back-end, different backbone") and the
tracking benches (Tables 8/9).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.skynet import SkyNetBackbone
from ..nn.module import Module
from .alexnet import AlexNetBackbone
from .mobilenet import MobileNetBackbone
from .resnet import ResNetBackbone
from .shufflenet import ShuffleNetBackbone
from .squeezenet import SqueezeNetBackbone
from .tinyyolo import TinyYoloBackbone
from .vgg import VGGBackbone

__all__ = ["BACKBONES", "build_backbone", "backbone_names"]


BACKBONES: dict[str, Callable[..., Module]] = {
    "skynet": lambda width_mult=1.0, rng=None: SkyNetBackbone(
        "C", width_mult=width_mult, rng=rng
    ),
    "skynet-a": lambda width_mult=1.0, rng=None: SkyNetBackbone(
        "A", width_mult=width_mult, rng=rng
    ),
    "skynet-b": lambda width_mult=1.0, rng=None: SkyNetBackbone(
        "B", width_mult=width_mult, rng=rng
    ),
    "resnet18": lambda width_mult=1.0, rng=None: ResNetBackbone(
        18, width_mult, rng=rng
    ),
    "resnet34": lambda width_mult=1.0, rng=None: ResNetBackbone(
        34, width_mult, rng=rng
    ),
    "resnet50": lambda width_mult=1.0, rng=None: ResNetBackbone(
        50, width_mult, rng=rng
    ),
    "vgg16": lambda width_mult=1.0, rng=None: VGGBackbone(
        width_mult, batch_norm=False, rng=rng
    ),
    "vgg16-bn": lambda width_mult=1.0, rng=None: VGGBackbone(
        width_mult, batch_norm=True, rng=rng
    ),
    "alexnet": lambda width_mult=1.0, rng=None: AlexNetBackbone(
        width_mult, rng=rng
    ),
    "mobilenet": lambda width_mult=1.0, rng=None: MobileNetBackbone(
        width_mult, rng=rng
    ),
    "shufflenet": lambda width_mult=1.0, rng=None: ShuffleNetBackbone(
        width_mult, rng=rng
    ),
    "squeezenet": lambda width_mult=1.0, rng=None: SqueezeNetBackbone(
        width_mult, rng=rng
    ),
    "tinyyolo": lambda width_mult=1.0, rng=None: TinyYoloBackbone(
        width_mult, rng=rng
    ),
}


def backbone_names() -> list[str]:
    return sorted(BACKBONES)


def build_backbone(
    name: str,
    width_mult: float = 1.0,
    rng: np.random.Generator | None = None,
) -> Module:
    """Instantiate a backbone by registry name."""
    try:
        factory = BACKBONES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown backbone {name!r}; available: {backbone_names()}"
        ) from None
    return factory(width_mult=width_mult, rng=rng)
