"""ResNet backbones (He et al., 2016) — Table 2 baselines.

ResNet-18/34 use BasicBlocks, ResNet-50 uses Bottlenecks.  Parameter
counts at ``width_mult=1`` match the paper's Table 2 (11.18 M / 21.28 M /
23.51 M — torchvision backbones minus the classifier head).

For the single-object detection task the network is truncated at overall
stride 8 (stem stride 4 + one stride-2 stage); the remaining stages run
at stride 1 so every baseline feeds the same YOLO back-end grid that
SkyNet does.  This preserves depth and parameter count while making the
comparison head-compatible, mirroring the paper's "same back-end" setup.
"""

from __future__ import annotations

import numpy as np

from ..hardware.descriptor import LayerDesc, NetDescriptor
from ..nn import Tensor
from ..nn.layers import BatchNorm2d, Conv2d, MaxPool2d, ReLU
from ..nn.module import Module, ModuleList
from ..utils.rng import default_rng

__all__ = ["ResNetBackbone", "resnet18", "resnet34", "resnet50"]


class BasicBlock(Module):
    """Two 3x3 convs with identity (or projected) shortcut."""

    expansion = 1

    def __init__(self, in_ch: int, out_ch: int, stride: int, rng) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_ch, out_ch, 3, stride=stride, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_ch)
        self.conv2 = Conv2d(out_ch, out_ch, 3, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_ch)
        self.relu = ReLU()
        self.downsample = None
        if stride != 1 or in_ch != out_ch:
            self.downsample = Conv2d(
                in_ch, out_ch, 1, stride=stride, pad=0, bias=False, rng=rng
            )
            self.down_bn = BatchNorm2d(out_ch)

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        if self.downsample is not None:
            identity = self.down_bn(self.downsample(x))
        return self.relu(out + identity)

    @staticmethod
    def describe(in_ch, out_ch, h, w, stride, name) -> list[LayerDesc]:
        oh, ow = (h + stride - 1) // stride, (w + stride - 1) // stride
        layers = [
            LayerDesc("conv", in_ch, out_ch, h, w, 3, stride, f"{name}.conv1"),
            LayerDesc("bn", out_ch, out_ch, oh, ow, name=f"{name}.bn1"),
            LayerDesc("act", out_ch, out_ch, oh, ow, name=f"{name}.relu1"),
            LayerDesc("conv", out_ch, out_ch, oh, ow, 3, 1, f"{name}.conv2"),
            LayerDesc("bn", out_ch, out_ch, oh, ow, name=f"{name}.bn2"),
        ]
        if stride != 1 or in_ch != out_ch:
            layers.append(
                LayerDesc("conv", in_ch, out_ch, h, w, 1, stride, f"{name}.down")
            )
            layers.append(
                LayerDesc("bn", out_ch, out_ch, oh, ow, name=f"{name}.down_bn")
            )
        layers.append(LayerDesc("add", out_ch, out_ch, oh, ow, name=f"{name}.add"))
        layers.append(LayerDesc("act", out_ch, out_ch, oh, ow, name=f"{name}.relu2"))
        return layers


class Bottleneck(Module):
    """1x1 reduce → 3x3 → 1x1 expand (x4), as in ResNet-50."""

    expansion = 4

    def __init__(self, in_ch: int, mid_ch: int, stride: int, rng) -> None:
        super().__init__()
        out_ch = mid_ch * self.expansion
        self.conv1 = Conv2d(in_ch, mid_ch, 1, pad=0, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(mid_ch)
        self.conv2 = Conv2d(mid_ch, mid_ch, 3, stride=stride, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(mid_ch)
        self.conv3 = Conv2d(mid_ch, out_ch, 1, pad=0, bias=False, rng=rng)
        self.bn3 = BatchNorm2d(out_ch)
        self.relu = ReLU()
        self.downsample = None
        if stride != 1 or in_ch != out_ch:
            self.downsample = Conv2d(
                in_ch, out_ch, 1, stride=stride, pad=0, bias=False, rng=rng
            )
            self.down_bn = BatchNorm2d(out_ch)

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        if self.downsample is not None:
            identity = self.down_bn(self.downsample(x))
        return self.relu(out + identity)

    @staticmethod
    def describe(in_ch, mid_ch, h, w, stride, name) -> list[LayerDesc]:
        out_ch = mid_ch * Bottleneck.expansion
        oh, ow = (h + stride - 1) // stride, (w + stride - 1) // stride
        layers = [
            LayerDesc("conv", in_ch, mid_ch, h, w, 1, 1, f"{name}.conv1"),
            LayerDesc("bn", mid_ch, mid_ch, h, w, name=f"{name}.bn1"),
            LayerDesc("conv", mid_ch, mid_ch, h, w, 3, stride, f"{name}.conv2"),
            LayerDesc("bn", mid_ch, mid_ch, oh, ow, name=f"{name}.bn2"),
            LayerDesc("conv", mid_ch, out_ch, oh, ow, 1, 1, f"{name}.conv3"),
            LayerDesc("bn", out_ch, out_ch, oh, ow, name=f"{name}.bn3"),
        ]
        if stride != 1 or in_ch != out_ch:
            layers.append(
                LayerDesc("conv", in_ch, out_ch, h, w, 1, stride, f"{name}.down")
            )
            layers.append(
                LayerDesc("bn", out_ch, out_ch, oh, ow, name=f"{name}.down_bn")
            )
        layers.append(LayerDesc("add", out_ch, out_ch, oh, ow, name=f"{name}.add"))
        return layers


_CONFIGS = {
    18: (BasicBlock, (2, 2, 2, 2)),
    34: (BasicBlock, (3, 4, 6, 3)),
    50: (Bottleneck, (3, 4, 6, 3)),
}
_STAGE_CHANNELS = (64, 128, 256, 512)


class ResNetBackbone(Module):
    """ResNet feature extractor truncated at stride 8 for detection."""

    stride = 8

    def __init__(
        self,
        depth: int = 18,
        width_mult: float = 1.0,
        in_channels: int = 3,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if depth not in _CONFIGS:
            raise ValueError(f"depth must be one of {sorted(_CONFIGS)}")
        rng = default_rng(rng)
        self.depth = depth
        self.width_mult = width_mult
        self.in_channels = in_channels
        block, stage_sizes = _CONFIGS[depth]
        self._block = block
        self._stage_sizes = stage_sizes
        ch = [max(4, int(round(c * width_mult))) for c in _STAGE_CHANNELS]
        self._stage_ch = ch

        self.stem = Conv2d(in_channels, ch[0], 7, stride=2, pad=3, bias=False, rng=rng)
        self.stem_bn = BatchNorm2d(ch[0])
        self.relu = ReLU()
        self.pool = MaxPool2d(2)

        # strides per stage: stage1 s1 (already at /4), stage2 s2 (-> /8),
        # stages 3-4 s1 to hold the detection grid resolution.
        stage_strides = (1, 2, 1, 1)
        self.stages = ModuleList()
        cur = ch[0]
        for si, (n_blocks, s) in enumerate(zip(stage_sizes, stage_strides)):
            for bi in range(n_blocks):
                stride = s if bi == 0 else 1
                if block is BasicBlock:
                    blk = BasicBlock(cur, ch[si], stride, rng)
                    cur = ch[si]
                else:
                    blk = Bottleneck(cur, ch[si], stride, rng)
                    cur = ch[si] * Bottleneck.expansion
                self.stages.append(blk)
        self.out_channels = cur

    def forward(self, x: Tensor) -> Tensor:
        x = self.pool(self.relu(self.stem_bn(self.stem(x))))
        for blk in self.stages:
            x = blk(x)
        return x

    def layer_descriptors(self, input_hw: tuple[int, int]) -> NetDescriptor:
        h, w = input_hw
        ch = self._stage_ch
        layers = [
            LayerDesc("conv", self.in_channels, ch[0], h, w, 7, 2, "stem"),
            LayerDesc("bn", ch[0], ch[0], h // 2, w // 2, name="stem_bn"),
            LayerDesc("act", ch[0], ch[0], h // 2, w // 2, name="stem_relu"),
            LayerDesc("pool", ch[0], ch[0], h // 2, w // 2, 2, 2, "stem_pool"),
        ]
        h, w = h // 4, w // 4
        cur = ch[0]
        stage_strides = (1, 2, 1, 1)
        for si, (n_blocks, s) in enumerate(zip(self._stage_sizes, stage_strides)):
            for bi in range(n_blocks):
                stride = s if bi == 0 else 1
                name = f"s{si + 1}b{bi + 1}"
                if self._block is BasicBlock:
                    layers += BasicBlock.describe(cur, ch[si], h, w, stride, name)
                    cur = ch[si]
                else:
                    layers += Bottleneck.describe(cur, ch[si], h, w, stride, name)
                    cur = ch[si] * Bottleneck.expansion
                h, w = (h + stride - 1) // stride, (w + stride - 1) // stride
        return NetDescriptor(layers, name=f"ResNet-{self.depth}")


def resnet18(width_mult: float = 1.0, rng=None) -> ResNetBackbone:
    return ResNetBackbone(18, width_mult, rng=rng)


def resnet34(width_mult: float = 1.0, rng=None) -> ResNetBackbone:
    return ResNetBackbone(34, width_mult, rng=rng)


def resnet50(width_mult: float = 1.0, rng=None) -> ResNetBackbone:
    return ResNetBackbone(50, width_mult, rng=rng)
