"""SqueezeNet backbone (Iandola et al., 2016).

Fire modules (squeeze 1x1 -> expand 1x1 + 3x3); the SystemsETHZ
contest entries (Table 1) used SqueezeNet + YOLO.  Truncated at stride 8.
"""

from __future__ import annotations

import numpy as np

from ..hardware.descriptor import LayerDesc, NetDescriptor
from ..nn import Tensor
from ..nn.layers import Conv2d, MaxPool2d, PWConv1x1, ReLU
from ..nn.module import Module, ModuleList
from ..utils.rng import default_rng

__all__ = ["FireModule", "SqueezeNetBackbone", "squeezenet"]


class FireModule(Module):
    """squeeze(1x1) -> [expand1x1 || expand3x3] -> concat."""

    def __init__(self, in_ch: int, squeeze: int, expand: int, rng) -> None:
        super().__init__()
        self.squeeze = PWConv1x1(in_ch, squeeze, bias=True, rng=rng)
        self.expand1 = PWConv1x1(squeeze, expand, bias=True, rng=rng)
        self.expand3 = Conv2d(squeeze, expand, 3, bias=True, rng=rng)
        self.relu = ReLU()
        self.out_channels = expand * 2

    def forward(self, x: Tensor) -> Tensor:
        s = self.relu(self.squeeze(x))
        return Tensor.concat(
            [self.relu(self.expand1(s)), self.relu(self.expand3(s))], axis=1
        )

    @staticmethod
    def describe(in_ch, squeeze, expand, h, w, name) -> list[LayerDesc]:
        return [
            LayerDesc("pwconv", in_ch, squeeze, h, w, name=f"{name}.squeeze"),
            LayerDesc("pwconv", squeeze, expand, h, w, name=f"{name}.expand1"),
            LayerDesc("conv", squeeze, expand, h, w, 3, 1, f"{name}.expand3"),
            LayerDesc("concat", expand * 2, expand * 2, h, w, name=f"{name}.cat"),
        ]


# (squeeze, expand) per fire module; pools after stem and fire2.
_FIRES = ((16, 64), (16, 64), (32, 128), (32, 128), (48, 192), (48, 192))


class SqueezeNetBackbone(Module):
    """SqueezeNet-1.1-style trunk truncated at stride 8."""

    stride = 8

    def __init__(
        self,
        width_mult: float = 1.0,
        in_channels: int = 3,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = default_rng(rng)
        self.width_mult = width_mult
        self.in_channels = in_channels

        def scale(c: int) -> int:
            return max(4, int(round(c * width_mult)))

        stem_ch = scale(64)
        self.stem = Conv2d(in_channels, stem_ch, 3, stride=2, rng=rng)
        self.relu = ReLU()
        self.pool = MaxPool2d(2)
        self.fires = ModuleList()
        self._plan: list[tuple[int, int, int]] = []
        cur = stem_ch
        for s, e in _FIRES:
            fire = FireModule(cur, scale(s), scale(e), rng)
            self.fires.append(fire)
            self._plan.append((cur, scale(s), scale(e)))
            cur = fire.out_channels
        self._stem_ch = stem_ch
        self.out_channels = cur

    def forward(self, x: Tensor) -> Tensor:
        x = self.relu(self.stem(x))  # stride 2
        x = self.pool(x)  # stride 4
        x = self.fires[0](x)
        x = self.fires[1](x)
        x = self.pool(x)  # stride 8
        for fire in self.fires[2:]:
            x = fire(x)
        return x

    def layer_descriptors(self, input_hw: tuple[int, int]) -> NetDescriptor:
        h, w = input_hw
        layers = [
            LayerDesc("conv", self.in_channels, self._stem_ch, h, w, 3, 2, "stem")
        ]
        h, w = (h + 1) // 2, (w + 1) // 2
        layers.append(LayerDesc("pool", self._stem_ch, self._stem_ch, h, w, 2, 2,
                                "pool1"))
        h, w = h // 2, w // 2
        for i, (cin, s, e) in enumerate(self._plan):
            layers += FireModule.describe(cin, s, e, h, w, f"fire{i + 2}")
            if i == 1:
                cout = e * 2
                layers.append(LayerDesc("pool", cout, cout, h, w, 2, 2, "pool2"))
                h, w = h // 2, w // 2
        return NetDescriptor(layers, name="SqueezeNet")


def squeezenet(width_mult: float = 1.0, rng=None) -> SqueezeNetBackbone:
    return SqueezeNetBackbone(width_mult, rng=rng)
