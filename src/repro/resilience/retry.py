"""Retry policy: exponential backoff with bounded, seeded jitter.

A transient fault (a worker hiccup, an injected crash) should cost one
short pause, not a failed request; a *persistent* fault should not see
every retrier hammer the same instant.  Exponential backoff handles the
first, jitter the second.  Delays are drawn from a caller-supplied
generator so tests and benchmarks stay deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to wait between attempts.

    The delay before retry ``k`` (0-based) is
    ``backoff_ms * multiplier**k``, capped at ``max_backoff_ms``, then
    scaled by a uniform jitter in ``[1 - jitter, 1 + jitter]``.
    """

    max_retries: int = 1
    backoff_ms: float = 5.0
    multiplier: float = 2.0
    jitter: float = 0.5
    max_backoff_ms: float = 1000.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_ms < 0 or self.max_backoff_ms < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay_ms(
        self, attempt: int, rng: np.random.Generator | None = None
    ) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        base = min(self.backoff_ms * self.multiplier ** attempt,
                   self.max_backoff_ms)
        if self.jitter and rng is not None:
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, base)
