"""Circuit breaker: stop hammering a failing backend, probe for recovery.

The serving stack runs the compiled engine by default and keeps the
eager ``no_grad`` forward as a functional twin.  When the compiled
backend fails repeatedly (a corrupted plan, an arena allocation
failure), retrying it forever turns one bad component into a dead
server.  The breaker converts *K consecutive failures* into an **open**
state that routes traffic to the fallback, then **half-opens** after a
cooldown to let exactly one probe test whether the primary recovered —
success re-closes the breaker, failure re-opens it for another
cooldown.
"""

from __future__ import annotations

import threading
import time

from .. import obs

__all__ = ["CLOSED", "HALF_OPEN", "OPEN", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open recovery probes.

    Thread-safe; shared by every worker of an
    :class:`~repro.serve.InferenceServer`.

    Parameters
    ----------
    threshold:
        Consecutive primary failures that trip the breaker open.
    cooldown_s:
        How long the breaker stays open before half-opening.
    name:
        Label used in the obs counters (``serve/breaker_*``).
    clock:
        Injectable monotonic clock (tests use a fake one).
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 0.25,
        name: str = "breaker",
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.opened_count = 0  # lifetime trips, for health/benchmarks

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow_primary(self) -> bool:
        """May this caller run the primary backend right now?

        Open: no (until the cooldown elapses, which half-opens and
        grants this caller the single probe slot).  Half-open: only the
        probe holder.  Closed: yes.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.cooldown_s:
                    return False
                self._state = HALF_OPEN
                self._probing = True
                obs.inc("serve/breaker_half_open")
                obs.event("serve/breaker_half_open", breaker=self.name)
                return True
            # HALF_OPEN: one probe in flight at a time
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        """A primary call succeeded: reset failures, close if probing."""
        with self._lock:
            self._failures = 0
            self._probing = False
            if self._state != CLOSED:
                self._state = CLOSED
                obs.inc("serve/breaker_closed")
                obs.event("serve/breaker_closed", breaker=self.name)

    def record_failure(self) -> None:
        """A primary call failed: count it; trip when over threshold or
        when a half-open probe fails."""
        with self._lock:
            self._failures += 1
            tripped = (
                self._state == HALF_OPEN
                or (self._state == CLOSED
                    and self._failures >= self.threshold)
            )
            self._probing = False
            if tripped and self._state != OPEN:
                self._state = OPEN
                self._opened_at = self._clock()
                self.opened_count += 1
                obs.inc("serve/breaker_open")
                obs.event("serve/breaker_open", breaker=self.name,
                          failures=self._failures)

    def trip(self, reason: str = "forced") -> None:
        """Force the breaker open *now*, e.g. an overload brownout
        pushing traffic onto the cheaper fallback.

        Restarts the cooldown from the current clock on every call, so
        a controller that keeps re-tripping holds the breaker open; once
        it stops, recovery happens through the normal half-open probe.
        Counts as one trip (``opened_count``) only on the closed/half-
        open -> open transition.
        """
        with self._lock:
            self._opened_at = self._clock()
            self._probing = False
            if self._state != OPEN:
                self._state = OPEN
                self.opened_count += 1
                obs.inc("serve/breaker_open")
                obs.event("serve/breaker_open", breaker=self.name,
                          forced=True, reason=reason)

    def snapshot(self) -> dict:
        """State summary for :meth:`InferenceServer.health`."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "opened_count": self.opened_count,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CircuitBreaker({self.name}, state={self.state!r}, "
                f"threshold={self.threshold})")
