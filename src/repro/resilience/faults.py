"""Deterministic, seedable fault injection.

The DAC-SDC evaluation penalizes runs that die mid-stream, so every
recovery path in this repository is *provable*: a :class:`FaultPlan`
describes which failures to inject where, :func:`inject` arms it for a
block, and instrumented *fault sites* across the codebase consult the
active plan.  With no plan armed a fault site costs one global read —
the same discipline as the :mod:`repro.obs` no-op path — so production
code pays nothing for its own testability.

Fault sites and the kinds they honour:

========================  ==========================================
site                      kinds
========================  ==========================================
``serve.runner``          ``crash`` (raise inside the batch forward,
                          exercising retry/bisection), ``stall``
                          (sleep ``delay_s``), ``nan``/``inf``
                          (corrupt the batch output)
``serve.worker``          ``crash`` (kill the worker thread itself,
                          exercising the watchdog respawn + requeue)
``serve.procworker``      ``crash`` (SIGKILL the process-pool child
                          from the parent hot path, exercising the
                          ProcWorkerDied retry + respawn ladder),
                          ``stall`` (sleep ``delay_s`` before the
                          round-trip)
``stream.source``         ``crash`` (kill a stream's producer thread,
                          exercising the supervisor restart),
                          ``stall`` (slow the camera)
``stream.queue``          ``crash`` (raise inside ``FrameQueue.put``),
                          ``stall`` (delay the accept path)
``stream.worker``         ``crash`` (kill a stream worker holding a
                          frame, exercising requeue + tracker
                          re-attach), ``stall``
``stream.sink``           ``crash`` (fail the event publish — costs
                          the event, never the frame), ``stall``
                          (a slow consumer, driving backpressure)
``arena.alloc``           ``alloc`` (``MemoryError`` on a
                          :class:`~repro.nn.engine.BufferArena` miss)
``checkpoint.write``      ``truncate``/``bitflip`` (corrupt the file
                          just after it was published — a torn write)
``train.batch``           ``nan``/``inf`` (poison a training batch,
                          exercising the anomaly guard rollback)
========================  ==========================================

Every injected fault bumps ``resilience/injected/<kind>`` and
``resilience/injected@<site>`` counters in :mod:`repro.obs`, so a test
can assert both that the fault fired *and* that the matching recovery
path answered it.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from .. import obs

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "WorkerCrash",
    "active_plan",
    "apply_array_fault",
    "corrupt_file",
    "inject",
    "trigger",
]

#: Every fault kind a :class:`FaultSpec` may carry.
FAULT_KINDS = (
    "nan", "inf", "crash", "stall", "truncate", "bitflip", "alloc",
)


class InjectedFault(RuntimeError):
    """An artificial failure raised by an armed fault site."""


class WorkerCrash(InjectedFault):
    """An injected fault that kills a server worker thread outright."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Parameters
    ----------
    site:
        The fault-site name this spec arms (see the module table).
    kind:
        One of :data:`FAULT_KINDS`.
    rate:
        Probability of firing per eligible hit (drawn from the plan's
        seeded generator, so runs are reproducible).
    times:
        Fire at most this many times (``None`` = unlimited).
    after:
        Skip the first ``after`` hits of the site before becoming
        eligible — "crash the third batch" is ``after=2, times=1``.
    delay_s:
        Sleep length for ``stall`` faults.
    """

    site: str
    kind: str
    rate: float = 1.0
    times: int | None = 1
    after: int = 0
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 (or None for unlimited)")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")


class FaultPlan:
    """A seeded set of :class:`FaultSpec` entries plus firing state.

    Thread-safe: server workers and trainer loops may hit the same plan
    concurrently.  Identical (specs, seed) pairs fire identically given
    the same sequence of site hits.
    """

    def __init__(self, specs, seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._hits = [0] * len(self.specs)
        self._fired = [0] * len(self.specs)

    def trigger(self, site: str) -> FaultSpec | None:
        """Record one hit of ``site``; return the spec that fires, if any."""
        with self._lock:
            for i, spec in enumerate(self.specs):
                if spec.site != site:
                    continue
                self._hits[i] += 1
                if self._hits[i] <= spec.after:
                    continue
                if spec.times is not None and self._fired[i] >= spec.times:
                    continue
                if spec.rate < 1.0 and self._rng.random() >= spec.rate:
                    continue
                self._fired[i] += 1
                obs.inc(f"resilience/injected/{spec.kind}")
                obs.inc(f"resilience/injected@{site}")
                return spec
        return None

    def fired(self, site: str | None = None) -> int:
        """How many faults have fired (optionally only at ``site``)."""
        with self._lock:
            return sum(
                n for spec, n in zip(self.specs, self._fired)
                if site is None or spec.site == site
            )

    def hits(self, site: str) -> int:
        """How many times ``site`` was reached (fired or not)."""
        with self._lock:
            return max(
                (n for spec, n in zip(self.specs, self._hits)
                 if spec.site == site),
                default=0,
            )


_ACTIVE: FaultPlan | None = None
_ACTIVE_LOCK = threading.Lock()


@contextmanager
def inject(plan: FaultPlan):
    """Arm ``plan`` for the duration of the block (nestable; the inner
    plan shadows the outer one)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous, _ACTIVE = _ACTIVE, plan
    try:
        yield plan
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE = previous


def active_plan() -> FaultPlan | None:
    """The currently armed plan, or ``None``."""
    return _ACTIVE


def trigger(site: str) -> FaultSpec | None:
    """The fault-site entry point: one global read when no plan is armed."""
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.trigger(site)


def apply_array_fault(x: np.ndarray, spec: FaultSpec) -> np.ndarray:
    """Return a copy of ``x`` with NaN/inf scattered through it."""
    if spec.kind not in ("nan", "inf"):
        raise ValueError(f"not an array fault kind: {spec.kind!r}")
    out = np.array(x, dtype=np.float32, copy=True)
    flat = out.reshape(-1)
    stride = max(1, flat.size // 8)
    flat[::stride] = np.nan if spec.kind == "nan" else np.inf
    return out


def corrupt_file(path: str, kind: str, seed: int = 0) -> None:
    """Corrupt ``path`` in place: ``truncate`` drops the tail half,
    ``bitflip`` flips one bit at a seed-determined offset.

    Also usable directly from tests to simulate torn writes and silent
    media corruption against :mod:`repro.resilience.checkpoint`.
    """
    size = os.path.getsize(path)
    if kind == "truncate":
        with open(path, "r+b") as fh:
            fh.truncate(max(1, size // 2))
        return
    if kind == "bitflip":
        offset = int(np.random.default_rng(seed).integers(size))
        with open(path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0x40]))
        return
    raise ValueError(f"unknown file corruption kind {kind!r}")
