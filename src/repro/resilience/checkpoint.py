"""Durable training checkpoints: atomic writes, checksums, a manifest.

``np.savez`` straight onto the target path is a data-loss bug waiting
for a power cut: a crash mid-write leaves a torn file where the only
copy of the weights used to be.  The :class:`CheckpointManager` closes
every hole in that story:

* each checkpoint is serialized in memory and published with
  tmp + fsync + rename (:func:`repro.utils.atomic.atomic_write_bytes`),
  so the filesystem only ever holds complete files;
* a CRC32 of the exact bytes written is recorded in a JSON **manifest**
  (itself written atomically), so truncation and bit rot are *detected*
  on load instead of surfacing as garbage weights;
* one checkpoint covers the full training state — model parameters and
  buffers, optimizer slots (momentum / Adam moments), scheduler
  position, and the NumPy RNG state — so a resumed run continues the
  exact step sequence of the interrupted one;
* :meth:`CheckpointManager.load_latest` walks the manifest newest-first
  and silently falls back to the previous good checkpoint when the
  newest is corrupt (counted on ``resilience/checkpoint_corrupt``).

Manifest format (``manifest.json``)::

    {"version": 1,
     "entries": [{"step": 3, "file": "ckpt_00000003.npz",
                  "crc32": 123456, "nbytes": 4096,
                  "rng_state": {...} | null,
                  "scheduler": {"step_count": 12} | null,
                  "extra": {...} | null}, ...]}
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..utils.atomic import atomic_write_bytes, crc32_bytes
from . import faults

__all__ = ["CheckpointError", "CheckpointManager", "RestoredState"]

_MANIFEST = "manifest.json"


class CheckpointError(RuntimeError):
    """A checkpoint failed integrity verification or restoration."""


@dataclass
class RestoredState:
    """What :meth:`CheckpointManager.load_latest` recovered."""

    step: int
    file: str
    extra: dict | None = None


class CheckpointManager:
    """Atomic, checksummed, self-pruning checkpoint directory.

    Parameters
    ----------
    directory:
        Where checkpoints and the manifest live (created on demand).
    keep:
        Retain at most this many checkpoints; older ones are pruned
        after each save (the manifest shrinks with them).
    """

    def __init__(self, directory: str, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = os.path.abspath(directory)
        self.keep = keep
        os.makedirs(self.directory, exist_ok=True)

    # ------------------------------------------------------------------ #
    # manifest
    # ------------------------------------------------------------------ #
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, _MANIFEST)

    def entries(self) -> list[dict]:
        """Manifest entries, oldest first (empty when none exist)."""
        try:
            with open(self.manifest_path) as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            return []
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"unreadable manifest {self.manifest_path}: {exc}"
            ) from exc
        return list(manifest.get("entries", []))

    def _write_manifest(self, entries: list[dict]) -> None:
        payload = json.dumps({"version": 1, "entries": entries}, indent=2)
        atomic_write_bytes(self.manifest_path, payload.encode())

    # ------------------------------------------------------------------ #
    # save
    # ------------------------------------------------------------------ #
    def save(
        self,
        step: int,
        model,
        optimizer=None,
        scheduler=None,
        rng: np.random.Generator | None = None,
        extra: dict | None = None,
    ) -> str:
        """Write one full-state checkpoint for ``step``; returns its path.

        The arrays go into one ``.npz`` published atomically; RNG and
        scheduler state (small, JSON-safe) ride in the manifest entry.
        """
        arrays = {
            f"model/{k}": np.asarray(v)
            for k, v in model.state_dict().items()
        }
        if optimizer is not None:
            for k, v in optimizer.state_dict().items():
                arrays[f"optim/{k}"] = np.asarray(v)
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        data = buf.getvalue()

        fname = f"ckpt_{step:08d}.npz"
        path = os.path.join(self.directory, fname)
        atomic_write_bytes(path, data)
        spec = faults.trigger("checkpoint.write")
        if spec is not None and spec.kind in ("truncate", "bitflip"):
            # Simulated torn write / bit rot *after* publication: the
            # manifest CRC still describes the intended bytes, so load
            # detects the damage.
            faults.corrupt_file(path, spec.kind)

        entry = {
            "step": int(step),
            "file": fname,
            "crc32": crc32_bytes(data),
            "nbytes": len(data),
            "rng_state": None if rng is None else rng.bit_generator.state,
            "scheduler": (None if scheduler is None
                          else scheduler.state_dict()),
            "extra": extra,
        }
        entries = [e for e in self.entries() if e["step"] != entry["step"]]
        entries.append(entry)
        entries.sort(key=lambda e: e["step"])
        pruned, entries = entries[:-self.keep], entries[-self.keep:]
        self._write_manifest(entries)
        for old in pruned:
            try:
                os.unlink(os.path.join(self.directory, old["file"]))
            except OSError:  # pragma: no cover - already gone
                pass
        obs.inc("resilience/checkpoint_saved")
        return path

    # ------------------------------------------------------------------ #
    # load
    # ------------------------------------------------------------------ #
    def verify(self, entry: dict) -> bytes:
        """Return the checkpoint bytes for ``entry`` iff the CRC matches."""
        path = os.path.join(self.directory, entry["file"])
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise CheckpointError(f"missing checkpoint {path}: {exc}") from exc
        if crc32_bytes(data) != entry["crc32"]:
            raise CheckpointError(
                f"checksum mismatch for {path}: the file is corrupt "
                f"(torn write or bit rot)"
            )
        return data

    def load_latest(
        self,
        model,
        optimizer=None,
        scheduler=None,
        rng: np.random.Generator | None = None,
    ) -> RestoredState | None:
        """Restore the newest checkpoint that passes verification.

        Corrupt checkpoints are skipped (newest-first) with a
        ``resilience/checkpoint_corrupt`` count each; returns ``None``
        when no good checkpoint exists.
        """
        for entry in reversed(self.entries()):
            try:
                data = self.verify(entry)
                self._restore(data, entry, model, optimizer, scheduler, rng)
            except (CheckpointError, ValueError, KeyError) as exc:
                obs.inc("resilience/checkpoint_corrupt")
                obs.inc("resilience/checkpoint_skipped")
                import warnings

                warnings.warn(
                    f"skipping corrupt checkpoint "
                    f"{entry.get('file')}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            obs.inc("resilience/checkpoint_restored")
            return RestoredState(step=int(entry["step"]),
                                 file=entry["file"],
                                 extra=entry.get("extra"))
        return None

    @staticmethod
    def _restore(data, entry, model, optimizer, scheduler, rng) -> None:
        with np.load(io.BytesIO(data)) as npz:
            model_state = {
                k[len("model/"):]: npz[k]
                for k in npz.files if k.startswith("model/")
            }
            optim_state = {
                k[len("optim/"):]: npz[k]
                for k in npz.files if k.startswith("optim/")
            }
        model.load_state_dict(model_state)
        if optimizer is not None and optim_state:
            optimizer.load_state_dict(optim_state)
        if scheduler is not None and entry.get("scheduler"):
            scheduler.load_state_dict(entry["scheduler"])
        if rng is not None and entry.get("rng_state"):
            rng.bit_generator.state = entry["rng_state"]
