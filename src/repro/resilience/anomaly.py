"""Training anomaly guard: catch NaN/inf before it reaches the weights.

A single non-finite loss — mixed-precision overflow, a poisoned batch,
an exploding gradient — silently destroys a training run: one
``opt.step()`` with NaN gradients and every parameter is NaN forever
after.  The guard sits between ``backward()`` and ``step()``:

* after each *successful* step it snapshots model + optimizer state
  (:meth:`commit`);
* before each step it checks the loss (and optionally every gradient)
  for NaN/inf (:meth:`check`);
* on an anomaly it **rolls back** to the last committed snapshot,
  halves the learning rate (with a floor), and tells the trainer to
  skip the step — the run degrades gracefully instead of diverging.

Counted on ``train/anomaly`` / ``train/rollbacks`` so tests can assert
the guard actually fired.
"""

from __future__ import annotations

import numpy as np

from .. import obs

__all__ = ["AnomalyGuard"]


class AnomalyGuard:
    """NaN/inf watchdog with snapshot rollback and LR backoff.

    Parameters
    ----------
    model, optimizer:
        The live training state to snapshot and restore.
    scheduler:
        Optional LR scheduler; its ``base_lr`` is scaled on rollback so
        a later ``scheduler.step()`` does not undo the backoff.
    lr_factor:
        Multiplied into the learning rate on every rollback.
    lr_min:
        Floor under the backed-off learning rate.
    check_grads:
        Also scan every parameter gradient for non-finite values (the
        loss can be finite while a gradient already overflowed).
    """

    def __init__(
        self,
        model,
        optimizer,
        scheduler=None,
        lr_factor: float = 0.5,
        lr_min: float = 1e-8,
        check_grads: bool = True,
    ) -> None:
        if not 0.0 < lr_factor < 1.0:
            raise ValueError("lr_factor must be in (0, 1)")
        if lr_min <= 0:
            raise ValueError("lr_min must be positive")
        self.model = model
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.lr_factor = lr_factor
        self.lr_min = lr_min
        self.check_grads = check_grads
        self.rollbacks = 0
        self._model_snapshot: dict | None = None
        self._optim_snapshot: dict | None = None
        self.commit()

    def commit(self) -> None:
        """Snapshot the current (known-good) model + optimizer state."""
        self._model_snapshot = {
            k: np.array(v, copy=True)
            for k, v in self.model.state_dict().items()
        }
        self._optim_snapshot = self.optimizer.state_dict()

    def check(self, loss_value: float) -> bool:
        """Return ``True`` (after rolling back) when the pending step is
        anomalous; ``False`` when it is safe to apply."""
        anomalous = not np.isfinite(loss_value)
        if not anomalous and self.check_grads:
            for p in self.optimizer.params:
                if p.grad is not None and not np.all(np.isfinite(p.grad)):
                    anomalous = True
                    break
        if not anomalous:
            return False
        self.rollback()
        return True

    def rollback(self) -> None:
        """Restore the last committed snapshot and halve the LR."""
        self.model.load_state_dict(self._model_snapshot)
        self.optimizer.load_state_dict(self._optim_snapshot)
        new_lr = max(self.optimizer.lr * self.lr_factor, self.lr_min)
        self.optimizer.lr = new_lr
        if self.scheduler is not None:
            self.scheduler.base_lr = max(
                self.scheduler.base_lr * self.lr_factor, self.lr_min
            )
        self.rollbacks += 1
        obs.inc("train/anomaly")
        obs.inc("train/rollbacks")
        obs.set_gauge("train/lr", new_lr)
