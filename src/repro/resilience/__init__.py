"""``repro.resilience`` — fault injection and the recovery it proves.

The paper's deployment setting (DAC-SDC scoring of long, unattended
runs on embedded boards) punishes systems that die mid-stream.  This
package makes survival testable:

* :mod:`~repro.resilience.faults` — a deterministic, seedable
  fault-injection framework (:class:`FaultPlan` + :func:`inject`).
  Instrumented fault sites across the serving stack, the buffer arena,
  checkpointing, and the trainers fire NaN/inf corruption, worker
  crashes, stalls, torn checkpoint writes, and allocation failures on
  demand — and cost one global read when no plan is armed.
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy`, exponential
  backoff with seeded jitter.
* :mod:`~repro.resilience.breaker` — :class:`CircuitBreaker`, tripping
  a failing compiled backend over to the eager fallback and
  half-opening to probe recovery.
* :mod:`~repro.resilience.checkpoint` — :class:`CheckpointManager`,
  atomic (tmp+fsync+rename) checkpoints with CRC32 checksums and a
  manifest covering model/optimizer/scheduler/RNG state; loads fall
  back to the previous good checkpoint on corruption.
* :mod:`~repro.resilience.anomaly` — :class:`AnomalyGuard`, the
  NaN/inf trainer guard that rolls back to the last good step and
  halves the learning rate instead of letting a run diverge.

Every fault and recovery is counted through :mod:`repro.obs`
(``resilience/*``, ``serve/*``, ``train/*``), so tests assert not just
that a run survived but *which* recovery path saved it.
"""

from .anomaly import AnomalyGuard
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .checkpoint import CheckpointError, CheckpointManager, RestoredState
from .faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    WorkerCrash,
    active_plan,
    apply_array_fault,
    corrupt_file,
    inject,
    trigger,
)
from .retry import RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "AnomalyGuard",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CheckpointError",
    "CheckpointManager",
    "CircuitBreaker",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RestoredState",
    "RetryPolicy",
    "WorkerCrash",
    "active_plan",
    "apply_array_fault",
    "corrupt_file",
    "inject",
    "trigger",
]
