"""GOT-10K-toolkit-style experiment protocol.

The real GOT-10K benchmark works through "an open responsive evaluation
server" (Section 7): trackers dump per-sequence prediction files which
are scored centrally.  This module mirrors that workflow locally: run a
tracker over a dataset, persist the raw predictions per sequence, then
score the saved results — so experiments can be re-scored without
re-running the tracker, and different trackers' dumps can be compared
after the fact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from ..datasets.got10k import TrackingDataset
from .evaluator import run_tracker
from .metrics import TrackingScores, score_tracking, success_curve

__all__ = ["ExperimentResult", "run_experiment", "score_experiment",
           "load_predictions"]


@dataclass(frozen=True)
class ExperimentResult:
    """A scored tracking experiment."""

    tracker_name: str
    scores: TrackingScores
    n_sequences: int
    n_frames: int

    def summary(self) -> dict:
        return {
            "tracker": self.tracker_name,
            "AO": round(self.scores.ao, 4),
            "SR0.50": round(self.scores.sr50, 4),
            "SR0.75": round(self.scores.sr75, 4),
            "sequences": self.n_sequences,
            "frames": self.n_frames,
        }


def _result_dir(out_dir: str, tracker_name: str) -> str:
    return os.path.join(out_dir, tracker_name)


def run_experiment(
    tracker,
    dataset: TrackingDataset,
    out_dir: str,
    tracker_name: str = "tracker",
) -> str:
    """Run ``tracker`` over ``dataset`` and dump per-sequence predictions.

    Each sequence produces ``<out_dir>/<tracker_name>/<seq>.txt`` with
    one ``cx,cy,w,h`` line per frame (the GOT-10K submission format,
    normalized coordinates).  Returns the result directory.
    """
    result_dir = _result_dir(out_dir, tracker_name)
    os.makedirs(result_dir, exist_ok=True)
    predictions = run_tracker(tracker, dataset)
    for seq, pred in zip(dataset, predictions):
        path = os.path.join(result_dir, f"{seq.name or 'seq'}.txt")
        np.savetxt(path, pred, fmt="%.6f", delimiter=",")
    return result_dir


def load_predictions(
    dataset: TrackingDataset, result_dir: str
) -> list[np.ndarray]:
    """Load the per-sequence predictions dumped by :func:`run_experiment`."""
    preds = []
    for seq in dataset:
        path = os.path.join(result_dir, f"{seq.name or 'seq'}.txt")
        if not os.path.exists(path):
            raise FileNotFoundError(
                f"no predictions for sequence {seq.name!r} in {result_dir}"
            )
        arr = np.loadtxt(path, delimiter=",").reshape(-1, 4)
        if len(arr) != len(seq):
            raise ValueError(
                f"{path}: {len(arr)} predictions for a {len(seq)}-frame "
                f"sequence"
            )
        preds.append(arr)
    return preds


def score_experiment(
    dataset: TrackingDataset,
    result_dir: str,
    tracker_name: str | None = None,
    write_report: bool = True,
) -> ExperimentResult:
    """Score a saved experiment (the evaluation-server role).

    When ``write_report`` is set, a ``report.json`` with the summary and
    the success curve is written next to the predictions.
    """
    preds = load_predictions(dataset, result_dir)
    gt = [seq.boxes for seq in dataset]
    scores = score_tracking(preds, gt)
    result = ExperimentResult(
        tracker_name=tracker_name or os.path.basename(result_dir.rstrip("/")),
        scores=scores,
        n_sequences=len(dataset),
        n_frames=dataset.total_frames(),
    )
    if write_report:
        thresholds, rates = success_curve(scores.ious)
        report = dict(result.summary())
        report["success_curve"] = {
            "thresholds": thresholds.tolist(),
            "rates": rates.tolist(),
        }
        with open(os.path.join(result_dir, "report.json"), "w") as fh:
            json.dump(report, fh, indent=2)
    return result
