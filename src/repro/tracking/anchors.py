"""Anchor grids for the Siamese RPN head.

Anchors live in *search-crop* coordinates (the crop is the unit square).
With the default contexts the target occupies roughly 1/SEARCH_CONTEXT
of the crop, so anchor sizes are ratio variations around that base.
"""

from __future__ import annotations

import numpy as np

from .siamese import SEARCH_CONTEXT

__all__ = ["RpnAnchors"]


class RpnAnchors:
    """Anchor boxes for an R x R response grid.

    Parameters
    ----------
    response:
        Response-map side length R.
    ratios:
        Width/height aspect ratios, one anchor per ratio per cell.
    feat_stride_frac:
        Grid spacing as a fraction of the search crop (backbone stride /
        search size).
    base_size:
        Anchor scale relative to the crop; defaults to the expected
        target size 1/SEARCH_CONTEXT.
    """

    def __init__(
        self,
        response: int,
        ratios: tuple[float, ...] = (0.5, 1.0, 2.0),
        feat_stride_frac: float = 8 / 64,
        base_size: float | None = None,
    ) -> None:
        if response < 1:
            raise ValueError("response grid must be positive")
        self.response = response
        self.ratios = tuple(ratios)
        self.n_anchors = len(ratios)
        base = 1.0 / SEARCH_CONTEXT if base_size is None else base_size

        # cell centers in crop coordinates (centered grid)
        offsets = (np.arange(response) - (response - 1) / 2) * feat_stride_frac
        cx = 0.5 + offsets[None, :]  # (1, R)
        cy = 0.5 + offsets[:, None]  # (R, 1)

        # (A, R, R, 4) cxcywh anchors
        boxes = np.empty((self.n_anchors, response, response, 4))
        for a, r in enumerate(self.ratios):
            w = base * np.sqrt(r)
            h = base / np.sqrt(r)
            boxes[a, ..., 0] = cx
            boxes[a, ..., 1] = cy
            boxes[a, ..., 2] = w
            boxes[a, ..., 3] = h
        self.boxes = boxes

    def decode(self, loc: np.ndarray) -> np.ndarray:
        """Decode (N, 4A, R, R) regression output to cxcywh boxes.

        Returns (N, A, R, R, 4) boxes in crop coordinates.
        """
        n = loc.shape[0]
        r = self.response
        loc = loc.reshape(n, self.n_anchors, 4, r, r).transpose(0, 1, 3, 4, 2)
        anchors = self.boxes[None]  # (1, A, R, R, 4)
        out = np.empty_like(loc)
        out[..., 0] = anchors[..., 0] + loc[..., 0] * anchors[..., 2]
        out[..., 1] = anchors[..., 1] + loc[..., 1] * anchors[..., 3]
        out[..., 2] = anchors[..., 2] * np.exp(np.clip(loc[..., 2], -6, 6))
        out[..., 3] = anchors[..., 3] * np.exp(np.clip(loc[..., 3], -6, 6))
        return out

    def encode(self, gt: np.ndarray) -> np.ndarray:
        """Regression targets (A, R, R, 4) for one cxcywh GT box."""
        a = self.boxes
        t = np.empty_like(a)
        t[..., 0] = (gt[0] - a[..., 0]) / a[..., 2]
        t[..., 1] = (gt[1] - a[..., 1]) / a[..., 3]
        t[..., 2] = np.log(max(gt[2], 1e-6) / a[..., 2])
        t[..., 3] = np.log(max(gt[3], 1e-6) / a[..., 3])
        return t

    def iou_with(self, gt: np.ndarray) -> np.ndarray:
        """IoU of every anchor with one cxcywh GT box: (A, R, R)."""
        from ..detection.boxes import box_iou, cxcywh_to_xyxy

        return box_iou(
            cxcywh_to_xyxy(self.boxes), cxcywh_to_xyxy(np.asarray(gt))
        )
