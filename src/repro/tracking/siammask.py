"""SiamMask-style tracker (Wang et al., 2019) — Table 9.

SiamMask augments the Siamese RPN with a segmentation branch: the
correlation features additionally predict a binary object mask, which
sharpens localization ("SiamMask ... outperforms SiamRPN++ under the
same configuration").  Training requires mask supervision, so the paper
uses YouTube-VOS; we use its synthetic stand-in
(:func:`repro.datasets.youtubevos.make_youtubevos`).
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, no_grad
from ..nn.layers import BatchNorm2d, Conv2d, PWConv1x1, ReLU, UpsampleNearest
from ..nn.module import Module
from ..utils.rng import default_rng, spawn
from .siamese import xcorr_depthwise
from .siamrpn import SEARCH_SIZE, SiamRPN, SiamRPNTracker

__all__ = ["SiamMask", "SiamMaskTracker", "MASK_SIZE", "mask_to_box"]

# Predicted mask resolution (square), covering the whole search crop.
MASK_SIZE = 16


class _MaskHead(Module):
    """Correlation features -> full-crop mask logits.

    conv3x3 -> upsample x2 -> conv3x3 -> 1x1, then bilinear-free nearest
    upsampling handles the rest of the scale gap.
    """

    def __init__(self, feat_ch: int, response: int, rng) -> None:
        super().__init__()
        self.conv_z = PWConv1x1(feat_ch, feat_ch, rng=rng)
        self.conv_x = PWConv1x1(feat_ch, feat_ch, rng=rng)
        self.corr_bn = BatchNorm2d(feat_ch)
        self.refine1 = Conv2d(feat_ch, feat_ch, 3, rng=rng)
        self.bn1 = BatchNorm2d(feat_ch)
        self.up = UpsampleNearest(2)
        self.refine2 = Conv2d(feat_ch, feat_ch // 2, 3, rng=rng)
        self.out = PWConv1x1(feat_ch // 2, 1, bias=True, rng=rng)
        self.relu = ReLU()
        self.response = response
        # upsample factor needed to reach MASK_SIZE from the response map
        self._extra_up = max(1, MASK_SIZE // (response * 2))
        self.extra = UpsampleNearest(self._extra_up)

    def forward(self, zf: Tensor, xf: Tensor) -> Tensor:
        corr = self.corr_bn(xcorr_depthwise(self.conv_x(xf), self.conv_z(zf)))
        y = self.relu(self.bn1(self.refine1(corr)))
        y = self.up(y)
        y = self.relu(self.refine2(y))
        y = self.out(y)
        if self._extra_up > 1:
            y = self.extra(y)
        return y  # (N, 1, ~MASK_SIZE, ~MASK_SIZE) logits


class SiamMask(SiamRPN):
    """SiamRPN plus a mask branch sharing the Siamese features."""

    def __init__(
        self,
        backbone: Module,
        feat_ch: int = 32,
        ratios: tuple[float, ...] = (0.5, 1.0, 2.0),
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = default_rng(rng)
        super().__init__(backbone, feat_ch=feat_ch, ratios=ratios, rng=rng)
        self.mask_head = _MaskHead(feat_ch, self.response, spawn(rng))

    def forward_with_mask(
        self, z_img: Tensor, x_img: Tensor
    ) -> tuple[Tensor, Tensor, Tensor]:
        """(cls, loc, mask logits) for a training pair."""
        zf = self.extract(z_img)
        xf = self.extract(x_img)
        return (
            self.cls_branch(zf, xf),
            self.loc_branch(zf, xf),
            self.mask_head(zf, xf),
        )


def mask_to_box(mask_prob: np.ndarray, threshold: float = 0.5
                ) -> np.ndarray | None:
    """Tight cxcywh box (in crop coords) around a thresholded mask.

    Returns ``None`` when the mask is empty at the threshold.
    """
    m = mask_prob >= threshold
    if not m.any():
        return None
    ys, xs = np.nonzero(m)
    h, w = mask_prob.shape
    x1, x2 = xs.min() / w, (xs.max() + 1) / w
    y1, y2 = ys.min() / h, (ys.max() + 1) / h
    return np.array([(x1 + x2) / 2, (y1 + y2) / 2, x2 - x1, y2 - y1])


class SiamMaskTracker(SiamRPNTracker):
    """Online tracker: RPN proposes, the mask branch refines the box.

    The final box blends the RPN regression with the mask's tight box
    (``mask_weight``), reproducing SiamMask's sharper localization.
    """

    def __init__(
        self,
        model: SiamMask,
        window_influence: float = 0.30,
        size_lr: float = 0.35,
        mask_weight: float = 0.5,
    ) -> None:
        super().__init__(model, window_influence, size_lr)
        self.mask_weight = mask_weight

    def track(self, frame: np.ndarray) -> np.ndarray:
        from .siamese import SEARCH_CONTEXT, crop_and_resize

        if self._zf is None:
            raise RuntimeError("call init() before track()")
        w, h = self.size
        side = SEARCH_CONTEXT * float(np.sqrt(max(w * h, 1e-8)))
        crop, (x0, y0, s) = crop_and_resize(
            frame, self.center, side, SEARCH_SIZE
        )
        model: SiamMask = self.model  # type: ignore[assignment]
        with no_grad():
            xf = model.extract(Tensor(crop[None]))
            cls = model.cls_branch(self._zf, xf).data
            loc = model.loc_branch(self._zf, xf).data
            mask_logits = model.mask_head(self._zf, xf).data

        n_anchors = model.n_anchors
        r = model.response
        score = 1.0 / (1.0 + np.exp(-cls.reshape(n_anchors, r, r)))
        score = (1 - self.window_influence) * score + (
            self.window_influence * self.window[None]
        )
        boxes = model.anchors.decode(loc)[0]
        a, i, j = np.unravel_index(score.argmax(), score.shape)
        rpn_box = boxes[a, i, j]

        mask_prob = 1.0 / (1.0 + np.exp(-mask_logits[0, 0]))
        mbox = mask_to_box(mask_prob)
        if mbox is not None:
            mw = self.mask_weight
            box = (1 - mw) * rpn_box + mw * mbox
        else:
            box = rpn_box

        bcx, bcy, bw, bh = box
        cx = float(np.clip(x0 + bcx * s, 0.0, 1.0))
        cy = float(np.clip(y0 + bcy * s, 0.0, 1.0))
        lr = self.size_lr
        w = (1 - lr) * self.size[0] + lr * bw * s
        h = (1 - lr) * self.size[1] + lr * bh * s
        self.center = (cx, cy)
        self.size = (float(np.clip(w, 0.01, 1.0)), float(np.clip(h, 0.01, 1.0)))
        return np.array([cx, cy, self.size[0], self.size[1]])
