"""SiamFC-style fully-convolutional Siamese tracker (Tao et al. / SiamFC).

The pre-RPN ancestor of SiamRPN++: a single cross-correlation response
map locates the target; scale is handled by a small multi-scale search
pyramid instead of box regression.  Included as the tracker-ablation
baseline — it shares the backbone and correlation machinery but has no
anchors and no regression, so comparing it with SiamRPN++ isolates the
RPN head's contribution.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, no_grad
from ..nn.layers import BatchNorm2d
from ..nn.module import Module
from ..utils.rng import default_rng, spawn
from .siamese import (
    EXEMPLAR_CONTEXT,
    SEARCH_CONTEXT,
    AdjustLayer,
    crop_and_resize,
    xcorr_depthwise,
)
from .siamrpn import EXEMPLAR_SIZE, SEARCH_SIZE

__all__ = ["SiamFC", "SiamFCTracker", "SiamFCTrainer"]


class SiamFC(Module):
    """Backbone + adjust + single correlation response.

    The response is the channel-mean of the depthwise correlation (the
    classic single-channel SiamFC score map), batch-normalized for
    trainability.
    """

    def __init__(
        self,
        backbone: Module,
        feat_ch: int = 32,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = default_rng(rng)
        self.backbone = backbone
        self.adjust = AdjustLayer(backbone.out_channels, feat_ch,
                                  rng=spawn(rng))
        self.corr_bn = BatchNorm2d(feat_ch)
        stride = getattr(backbone, "stride", 8)
        self.stride = stride
        self.response = SEARCH_SIZE // stride - EXEMPLAR_SIZE // stride + 1

    def extract(self, images: Tensor) -> Tensor:
        return self.adjust(self.backbone(images))

    def forward(self, z_img: Tensor, x_img: Tensor) -> Tensor:
        """Score map (N, R, R) — higher where the target is."""
        zf = self.extract(z_img)
        xf = self.extract(x_img)
        corr = self.corr_bn(xcorr_depthwise(xf, zf))
        return corr.mean(axis=1)


class SiamFCTrainer:
    """Logistic training of the SiamFC score map.

    Labels are +1 within ``radius`` cells of the cell containing the
    ground-truth center (in search-crop coordinates), 0 elsewhere — the
    original SiamFC recipe with class balancing.
    """

    def __init__(
        self,
        model: SiamFC,
        steps: int = 60,
        batch_size: int = 8,
        lr: float = 1e-3,
        radius: int = 1,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.steps = steps
        self.batch_size = batch_size
        self.lr = lr
        self.radius = radius
        self.seed = seed

    def _labels(self, gt_boxes: np.ndarray) -> np.ndarray:
        r = self.model.response
        frac = self.model.stride / SEARCH_SIZE
        grid = (np.arange(r) - (r - 1) / 2) * frac + 0.5
        labels = np.zeros((len(gt_boxes), r, r))
        for n, gt in enumerate(gt_boxes):
            di = np.abs(grid - gt[1])[:, None] / frac
            dj = np.abs(grid - gt[0])[None, :] / frac
            labels[n] = ((di <= self.radius) & (dj <= self.radius))
        return labels.astype(np.float64)

    def fit(self, dataset, rng: np.random.Generator | None = None
            ) -> list[float]:
        from ..nn.optim import Adam
        from .trainer import sample_pairs

        rng = (np.random.default_rng(self.seed) if rng is None
               else default_rng(rng))
        opt = Adam(self.model.parameters(), lr=self.lr)
        losses = []
        self.model.train()
        for _ in range(self.steps):
            batch = sample_pairs(dataset, self.batch_size, rng)
            score = self.model(Tensor(batch.exemplars),
                               Tensor(batch.searches))
            labels = self._labels(batch.gt_boxes)
            pos = labels
            neg = 1.0 - labels
            # balanced BCE with logits
            elem = score.relu() - score * Tensor(labels) + (
                ((-score.abs()).exp() + 1.0).log()
            )
            pos_loss = (elem * Tensor(pos)).sum() * (1.0 / max(pos.sum(), 1))
            neg_loss = (elem * Tensor(neg)).sum() * (1.0 / max(neg.sum(), 1))
            loss = pos_loss + neg_loss
            self.model.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        self.model.eval()
        return losses


class SiamFCTracker:
    """Inference loop: argmax of the response map + scale pyramid.

    No box regression: the box keeps the exemplar's aspect ratio and is
    rescaled by whichever pyramid level scored highest (damped by
    ``scale_lr``).
    """

    def __init__(
        self,
        model: SiamFC,
        scales: tuple[float, ...] = (0.96, 1.0, 1.04),
        window_influence: float = 0.35,
        scale_lr: float = 0.4,
        engine: str | None = None,
        config=None,
    ) -> None:
        from ..runtime import SessionConfig
        from ..utils.deprecation import warn_once

        if engine is not None:
            if engine not in ("eager", "compiled"):
                raise ValueError(f"unknown engine {engine!r}")
            warn_once(
                "SiamFCTracker.engine",
                "SiamFCTracker(engine=...) is deprecated; pass "
                "config=SessionConfig(backend='engine'|'eager') instead",
            )
            if config is not None:
                raise TypeError("pass either config= or engine=, not both")
            config = SessionConfig(
                backend="engine" if engine == "compiled" else "eager",
                fallback=engine == "eager",
            )
        # Trackers default to the eager path: feature extraction runs on
        # two crop geometries and frame-rate batches of one, where the
        # compile step only pays off over long sequences.
        self.config = (config if config is not None
                       else SessionConfig(backend="eager"))
        self.model = model
        self.scales = scales
        self.window_influence = window_influence
        self.scale_lr = scale_lr
        self._session = None
        r = model.response
        hann = np.hanning(r + 2)[1:-1]
        self.window = np.outer(hann, hann)
        self.window /= self.window.max()
        self._zf: Tensor | None = None
        self.center = (0.5, 0.5)
        self.size = (0.1, 0.1)

    @property
    def session(self):
        """The tracker's feature-extraction
        :class:`~repro.runtime.Session` (built on first use)."""
        if self._session is None:
            from ..runtime import Session

            self._session = Session.load(self.model, self.config)
        return self._session

    def _extract(self, crop: np.ndarray) -> Tensor:
        """Features for one (1, 3, S, S) crop via the session backend."""
        return Tensor(self.session.run(crop))

    def init(self, frame: np.ndarray, box_cxcywh: np.ndarray) -> None:
        cx, cy, w, h = [float(v) for v in box_cxcywh]
        self.center, self.size = (cx, cy), (w, h)
        side = EXEMPLAR_CONTEXT * float(np.sqrt(w * h))
        crop, _ = crop_and_resize(frame, self.center, side, EXEMPLAR_SIZE)
        self.model.eval()
        self._zf = self._extract(crop[None])

    def _score(self, frame: np.ndarray, scale: float) -> tuple[np.ndarray,
                                                               tuple]:
        w, h = self.size
        side = SEARCH_CONTEXT * scale * float(np.sqrt(max(w * h, 1e-8)))
        crop, geom = crop_and_resize(frame, self.center, side, SEARCH_SIZE)
        xf = self._extract(crop[None])
        with no_grad():
            corr = self.model.corr_bn(
                xcorr_depthwise(xf, self._zf)
            )
            score = corr.mean(axis=1).data[0]
        return score, geom

    def track(self, frame: np.ndarray) -> np.ndarray:
        if self._zf is None:
            raise RuntimeError("call init() before track()")
        best = None
        for scale in self.scales:
            score, geom = self._score(frame, scale)
            score = (1 - self.window_influence) * score + (
                self.window_influence * self.window
            )
            peak = float(score.max())
            if best is None or peak > best[0]:
                best = (peak, score, geom, scale)
        _, score, (x0, y0, s), scale = best

        i, j = np.unravel_index(score.argmax(), score.shape)
        r = self.model.response
        # map the response cell back into the crop, then the frame
        frac = self.model.stride / SEARCH_SIZE
        bcx = 0.5 + (j - (r - 1) / 2) * frac
        bcy = 0.5 + (i - (r - 1) / 2) * frac
        cx = float(np.clip(x0 + bcx * s, 0.0, 1.0))
        cy = float(np.clip(y0 + bcy * s, 0.0, 1.0))
        lr = self.scale_lr
        new_scale = (1 - lr) + lr * scale
        w = float(np.clip(self.size[0] * new_scale, 0.01, 1.0))
        h = float(np.clip(self.size[1] * new_scale, 0.01, 1.0))
        self.center = (cx, cy)
        self.size = (w, h)
        return np.array([cx, cy, w, h])
