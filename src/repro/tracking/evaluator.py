"""GOT-10K-protocol evaluation: run a tracker over sequences, score AO/SR.

Also provides the tracker *speed* model behind the FPS columns of
Tables 8/9: per-frame latency = backbone on the search window + head +
framework dispatch + tracking logic, evaluated with the 1080Ti roofline
model.  The dominant term for deep backbones on a fast desktop GPU is
per-layer dispatch overhead, which is why ResNet-50 (~175 kernel
launches at stride 8) tracks ~1.6x slower than SkyNet (~40 launches)
despite the GPU's huge FLOP headroom — exactly the effect the paper
exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..datasets.got10k import TrackingDataset
from ..hardware.descriptor import NetDescriptor
from ..hardware.gpu.latency import GpuLatencyModel
from ..hardware.spec import GTX_1080TI, GpuSpec
from .metrics import TrackingScores, score_tracking

__all__ = ["run_tracker", "evaluate_tracker", "TrackerSpeedModel"]


def run_tracker(tracker, dataset: TrackingDataset) -> list[np.ndarray]:
    """Track every sequence (init on frame 0); returns per-seq boxes."""
    all_pred = []
    for seq in dataset:
        tracker.init(seq.frames[0], seq.boxes[0])
        pred = [seq.boxes[0].copy()]
        for t in range(1, len(seq)):
            pred.append(tracker.track(seq.frames[t]))
        all_pred.append(np.stack(pred))
    return all_pred


def evaluate_tracker(tracker, dataset: TrackingDataset) -> TrackingScores:
    """AO / SR@0.50 / SR@0.75 of ``tracker`` over ``dataset``."""
    pred = run_tracker(tracker, dataset)
    gt = [seq.boxes for seq in dataset]
    return score_tracking(pred, gt)


@dataclass(frozen=True)
class TrackerSpeedModel:
    """Model the FPS of a Siamese tracker on a desktop GPU (Tables 8/9).

    Parameters
    ----------
    spec:
        GPU spec (default 1080Ti, the paper's tracking device).
    search_hw:
        Search-window resolution at deployment (255 x 255 in the paper).
    dispatch_overhead_us:
        Per-layer framework dispatch cost (eager-mode PyTorch on the
        paper's stack), replacing the spec's bare kernel-launch figure.
    logic_overhead_ms:
        Fixed per-frame tracking logic (crop/resize, window penalty,
        box mapping) on the host.
    head_per_cell_us:
        Correlation + RPN head cost per response-map cell — stride-8
        backbones (SkyNet, dilated ResNet-50) correlate 32x32 maps,
        stride-16 AlexNet only 16x16, so head cost follows the feature
        stride.
    mask_base_ms / mask_per_channel_ms:
        Extra cost of the SiamMask branch: fixed part + a part scaling
        with the backbone's output width (the mask head consumes the
        full-width features).
    """

    spec: GpuSpec = GTX_1080TI
    search_hw: tuple[int, int] = (255, 255)
    dispatch_overhead_us: float = 95.0
    logic_overhead_ms: float = 16.0
    head_per_cell_us: float = 5.0
    mask_base_ms: float = 6.0
    mask_per_channel_ms: float = 0.006

    def backbone_ms(self, net: NetDescriptor) -> float:
        spec = replace(self.spec, kernel_overhead_us=self.dispatch_overhead_us)
        return GpuLatencyModel(spec, batch=1).network_latency_ms(net)

    def head_ms(self, backbone) -> float:
        stride = getattr(backbone, "stride", 8)
        cells = (self.search_hw[0] // stride) * (self.search_hw[1] // stride)
        return cells * self.head_per_cell_us / 1e3

    def fps(
        self,
        backbone,
        with_mask: bool = False,
    ) -> float:
        """Frames per second for a tracker built on ``backbone``.

        ``backbone`` must expose ``layer_descriptors(hw)``,
        ``out_channels`` and ``stride``.
        """
        net = backbone.layer_descriptors(self.search_hw)
        total = (
            self.backbone_ms(net)
            + self.head_ms(backbone)
            + self.logic_overhead_ms
        )
        if with_mask:
            total += (
                self.mask_base_ms
                + self.mask_per_channel_ms * backbone.out_channels
            )
        return 1e3 / total
