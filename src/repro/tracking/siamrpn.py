"""SiamRPN++-style Siamese tracker (Li et al., 2019a) — Table 8.

The tracker correlates exemplar and search features with depthwise
cross-correlation, then predicts per-anchor classification scores and
box refinements (the region-proposal head).  SiamRPN++ is "the first
Siamese tracker that has been proven to profit from backbones with
different capacities as long as they are properly trained" — exactly the
property Table 8 exploits by swapping AlexNet / ResNet-50 / SkyNet
behind the same head.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, no_grad
from ..nn.layers import BatchNorm2d, Conv2d, PWConv1x1, ReLU
from ..nn.module import Module
from ..utils.rng import default_rng, spawn
from .anchors import RpnAnchors
from .siamese import (
    EXEMPLAR_CONTEXT,
    SEARCH_CONTEXT,
    AdjustLayer,
    crop_and_resize,
    xcorr_depthwise,
)

__all__ = ["SiamRPN", "SiamRPNTracker", "EXEMPLAR_SIZE", "SEARCH_SIZE"]

# Miniature analogues of the paper's 127/255 exemplar/search resolution
# (Section 7.1 trains SkyNet at 128/256); scaled to the synthetic data.
EXEMPLAR_SIZE = 32
SEARCH_SIZE = 64


class _RpnBranch(Module):
    """One head branch (cls or loc): z/x transforms + xcorr + predictor.

    A BatchNorm after the correlation keeps the response magnitude
    bounded — raw depthwise xcorr sums hundreds of products and would
    otherwise saturate the losses (SiamRPN++ normalizes here too).
    """

    def __init__(self, feat_ch: int, out_ch: int, rng) -> None:
        super().__init__()
        self.conv_z = PWConv1x1(feat_ch, feat_ch, rng=rng)
        self.conv_x = PWConv1x1(feat_ch, feat_ch, rng=rng)
        self.corr_bn = BatchNorm2d(feat_ch)
        self.head = Conv2d(feat_ch, feat_ch, 3, rng=rng)
        self.head_bn = BatchNorm2d(feat_ch)
        self.relu = ReLU()
        self.out = PWConv1x1(feat_ch, out_ch, bias=True, rng=rng)

    def forward(self, zf: Tensor, xf: Tensor) -> Tensor:
        corr = self.corr_bn(xcorr_depthwise(self.conv_x(xf), self.conv_z(zf)))
        return self.out(self.relu(self.head_bn(self.head(corr))))


class SiamRPN(Module):
    """Siamese RPN network: shared backbone + adjust + two branches.

    Parameters
    ----------
    backbone:
        Feature extractor (any zoo backbone or SkyNet); its stride sets
        the response-map size.
    feat_ch:
        Tracker-internal channel width after the adjust layer.
    ratios:
        Anchor aspect ratios (one anchor per ratio per cell).
    """

    def __init__(
        self,
        backbone: Module,
        feat_ch: int = 32,
        ratios: tuple[float, ...] = (0.5, 1.0, 2.0),
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = default_rng(rng)
        self.backbone = backbone
        self.adjust = AdjustLayer(backbone.out_channels, feat_ch, rng=spawn(rng))
        self.n_anchors = len(ratios)
        self.cls_branch = _RpnBranch(feat_ch, self.n_anchors, spawn(rng))
        self.loc_branch = _RpnBranch(feat_ch, 4 * self.n_anchors, spawn(rng))

        stride = getattr(backbone, "stride", 8)
        zf_size = EXEMPLAR_SIZE // stride
        xf_size = SEARCH_SIZE // stride
        self.response = xf_size - zf_size + 1
        self.anchors = RpnAnchors(
            self.response, ratios, feat_stride_frac=stride / SEARCH_SIZE
        )

    def extract(self, images: Tensor) -> Tensor:
        return self.adjust(self.backbone(images))

    def forward(self, z_img: Tensor, x_img: Tensor) -> tuple[Tensor, Tensor]:
        """Joint forward: (cls logits (N, A, R, R), loc (N, 4A, R, R))."""
        zf = self.extract(z_img)
        xf = self.extract(x_img)
        return self.cls_branch(zf, xf), self.loc_branch(zf, xf)


class SiamRPNTracker:
    """Online tracker wrapping a trained :class:`SiamRPN`.

    Implements the standard SiamRPN inference loop: template once, then
    per frame crop the search window at the previous position, score
    anchors (with a cosine-window motion prior), decode the best box,
    and smooth the size update.
    """

    def __init__(
        self,
        model: SiamRPN,
        window_influence: float = 0.30,
        size_lr: float = 0.35,
    ) -> None:
        self.model = model
        self.window_influence = window_influence
        self.size_lr = size_lr
        r = model.response
        hann = np.hanning(r + 2)[1:-1]
        self.window = np.outer(hann, hann)
        self.window /= self.window.sum()
        self._zf: Tensor | None = None
        self.center = (0.5, 0.5)
        self.size = (0.1, 0.1)

    # ------------------------------------------------------------------ #
    def init(self, frame: np.ndarray, box_cxcywh: np.ndarray) -> None:
        """Set the exemplar from the first frame's ground-truth box."""
        cx, cy, w, h = [float(v) for v in box_cxcywh]
        self.center, self.size = (cx, cy), (w, h)
        side = EXEMPLAR_CONTEXT * float(np.sqrt(w * h))
        crop, _ = crop_and_resize(frame, self.center, side, EXEMPLAR_SIZE)
        self.model.eval()
        with no_grad():
            self._zf = self.model.extract(Tensor(crop[None]))

    def track(self, frame: np.ndarray) -> np.ndarray:
        """Process one frame; returns the cxcywh box in image coords."""
        if self._zf is None:
            raise RuntimeError("call init() before track()")
        w, h = self.size
        side = SEARCH_CONTEXT * float(np.sqrt(max(w * h, 1e-8)))
        crop, (x0, y0, s) = crop_and_resize(
            frame, self.center, side, SEARCH_SIZE
        )
        with no_grad():
            xf = self.model.extract(Tensor(crop[None]))
            cls = self.model.cls_branch(self._zf, xf).data
            loc = self.model.loc_branch(self._zf, xf).data

        n_anchors = self.model.n_anchors
        r = self.model.response
        score = 1.0 / (1.0 + np.exp(-cls.reshape(n_anchors, r, r)))
        score = (1 - self.window_influence) * score + (
            self.window_influence * self.window[None]
        )
        boxes = self.model.anchors.decode(loc)[0]  # (A, R, R, 4) crop coords
        a, i, j = np.unravel_index(score.argmax(), score.shape)
        bcx, bcy, bw, bh = boxes[a, i, j]

        # map from crop coords back to image coords
        cx = x0 + bcx * s
        cy = y0 + bcy * s
        new_w = bw * s
        new_h = bh * s
        lr = self.size_lr
        w = (1 - lr) * self.size[0] + lr * new_w
        h = (1 - lr) * self.size[1] + lr * new_h
        cx = float(np.clip(cx, 0.0, 1.0))
        cy = float(np.clip(cy, 0.0, 1.0))
        self.center = (cx, cy)
        self.size = (float(np.clip(w, 0.01, 1.0)), float(np.clip(h, 0.01, 1.0)))
        return np.array([cx, cy, self.size[0], self.size[1]])
