"""Shared Siamese-tracker machinery.

Siamese trackers "locate the object by the correlation between features
extracted from the exemplar image and search image" (Section 7.1).  This
module provides the two ingredients every such tracker needs:

* :func:`crop_and_resize` — context-padded square crops around a target
  box (the exemplar/search windows),
* :func:`xcorr_depthwise` — depthwise cross-correlation of search
  features with exemplar features (the SiamRPN++ correlation head),
  implemented on the autograd substrate so it is trainable.
"""

from __future__ import annotations

import numpy as np

from ..datasets.augment import resize_bilinear
from ..nn import Tensor
from ..nn import functional as F
from ..nn.layers import BatchNorm2d, PWConv1x1, ReLU
from ..nn.module import Module
from ..utils.rng import default_rng

__all__ = ["crop_and_resize", "xcorr_depthwise", "AdjustLayer",
           "compile_extractor", "EXEMPLAR_CONTEXT", "SEARCH_CONTEXT"]

# Context factors: crop side = context * sqrt(w*h) around the target.
EXEMPLAR_CONTEXT = 2.0
SEARCH_CONTEXT = 4.0


def crop_and_resize(
    image: np.ndarray,
    center_xy: tuple[float, float],
    side: float,
    out_size: int,
) -> tuple[np.ndarray, tuple[float, float, float]]:
    """Crop a square window (normalized coords) and resize it.

    Parameters
    ----------
    image:
        (3, H, W) float image.
    center_xy:
        Window center (cx, cy), normalized.
    side:
        Window side length, normalized to image *height* and *width*
        independently (the window is square in normalized space).
    out_size:
        Output resolution (pixels, square).

    Returns
    -------
    crop:
        (3, out_size, out_size) float32 window, mean-padded outside the
        frame.
    frame:
        (x0, y0, side) of the window in normalized image coordinates —
        needed to map predictions back.
    """
    _, h, w = image.shape
    cx, cy = center_xy
    x0, y0 = cx - side / 2, cy - side / 2
    px0, py0 = int(round(x0 * w)), int(round(y0 * h))
    ps_w, ps_h = max(2, int(round(side * w))), max(2, int(round(side * h)))

    pad_value = image.mean(axis=(1, 2), keepdims=True).astype(image.dtype)
    canvas = np.broadcast_to(pad_value, (3, ps_h, ps_w)).copy()
    sx0, sy0 = max(0, px0), max(0, py0)
    sx1, sy1 = min(w, px0 + ps_w), min(h, py0 + ps_h)
    if sx1 > sx0 and sy1 > sy0:
        canvas[:, sy0 - py0 : sy1 - py0, sx0 - px0 : sx1 - px0] = image[
            :, sy0:sy1, sx0:sx1
        ]
    crop = resize_bilinear(canvas[None], (out_size, out_size))[0]
    return crop.astype(np.float32), (x0, y0, side)


def xcorr_depthwise(x: Tensor, z: Tensor) -> Tensor:
    """Depthwise cross-correlation (per batch item, per channel).

    Parameters
    ----------
    x:
        Search features (N, C, Hx, Wx).
    z:
        Exemplar features (N, C, Hz, Wz) used as the filter bank.

    Returns
    -------
    (N, C, Hx-Hz+1, Wx-Wz+1) response maps.
    """
    n, c, hx, wx = x.shape
    nz, cz, hz, wz = z.shape
    if (n, c) != (nz, cz):
        raise ValueError(f"shape mismatch: x {x.shape} vs z {z.shape}")
    if hz > hx or wz > wx:
        raise ValueError("exemplar features larger than search features")
    xr = x.reshape(1, n * c, hx, wx)
    zr = z.reshape(n * c, 1, hz, wz)
    out = F.depthwise_conv2d(xr, zr, stride=1, pad=0)
    return out.reshape(n, c, hx - hz + 1, wx - wz + 1)


def compile_extractor(model: Module, arena=None, quant=None, calibration=None):
    """Compile a Siamese model's feature extractor (backbone + adjust).

    Returns a :class:`repro.nn.engine.CompiledNet` equivalent to
    ``model.extract`` in eval mode.  Exemplar and search crops have
    different static shapes, so the shape-keyed arena keeps separate
    buffers for each and both paths stay allocation-free after the
    first frame.

    ``quant``/``calibration`` select the integer-domain backend (see
    :func:`repro.nn.engine.compile_net`); calibrate on search-sized
    crops — the scales are per-tensor constants, so exemplar-sized
    inputs reuse them.
    """
    from ..nn.engine import compile_net
    from ..nn.module import Sequential

    was_training = model.training
    model.eval()
    net = compile_net(
        Sequential(model.backbone, model.adjust),
        name=f"{type(model).__name__}.extract",
        arena=arena,
        quant=quant,
        calibration=calibration,
    )
    if was_training:
        model.train()
    return net


class AdjustLayer(Module):
    """1x1 conv + BN + ReLU mapping backbone channels to tracker width.

    SiamRPN++ inserts exactly this 'neck' so backbones of different
    widths (AlexNet 256, ResNet-50 2048, SkyNet 96) feed an identical
    correlation head.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = default_rng(rng)
        self.conv = PWConv1x1(in_channels, out_channels, rng=rng)
        self.bn = BatchNorm2d(out_channels)
        self.relu = ReLU()
        self.out_channels = out_channels

    def forward(self, x: Tensor) -> Tensor:
        return self.relu(self.bn(self.conv(x)))
