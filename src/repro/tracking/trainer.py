"""Training for Siamese trackers on synthetic sequences.

Pairs (exemplar, search) are sampled from the same sequence with a
random frame gap; the exemplar is cropped around its ground-truth box,
the search around a jittered position (so the target is off-center, as
at tracking time).  Losses: BCE over anchors for classification,
smooth-L1 on positive anchors for regression, and (for SiamMask) BCE on
the predicted mask.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..datasets.augment import resize_bilinear
from ..datasets.got10k import TrackingDataset
from ..nn import Tensor
from ..nn import functional as F
from ..nn.optim import Adam
from ..resilience import faults
from ..resilience.anomaly import AnomalyGuard
from ..resilience.checkpoint import CheckpointManager
from ..utils.rng import default_rng
from .siamese import EXEMPLAR_CONTEXT, SEARCH_CONTEXT, crop_and_resize
from .siamrpn import EXEMPLAR_SIZE, SEARCH_SIZE, SiamRPN
from .siammask import MASK_SIZE, SiamMask

__all__ = ["PairBatch", "sample_pairs", "SiameseTrainer", "TrackTrainConfig"]


@dataclass
class PairBatch:
    """One training batch of exemplar/search pairs."""

    exemplars: np.ndarray  # (N, 3, E, E)
    searches: np.ndarray  # (N, 3, S, S)
    gt_boxes: np.ndarray  # (N, 4) cxcywh in search-crop coords
    gt_masks: np.ndarray | None = None  # (N, M, M) float in crop coords


def _crop_mask(
    mask: np.ndarray, frame: tuple[float, float, float], out_size: int
) -> np.ndarray:
    """Crop + resize a boolean mask with the same window as the image."""
    h, w = mask.shape
    x0, y0, side = frame
    px0, py0 = int(round(x0 * w)), int(round(y0 * h))
    ps_w, ps_h = max(2, int(round(side * w))), max(2, int(round(side * h)))
    canvas = np.zeros((ps_h, ps_w), dtype=np.float32)
    sx0, sy0 = max(0, px0), max(0, py0)
    sx1, sy1 = min(w, px0 + ps_w), min(h, py0 + ps_h)
    if sx1 > sx0 and sy1 > sy0:
        canvas[sy0 - py0 : sy1 - py0, sx0 - px0 : sx1 - px0] = mask[
            sy0:sy1, sx0:sx1
        ]
    out = resize_bilinear(canvas[None, None], (out_size, out_size))[0, 0]
    return (out > 0.5).astype(np.float32)


def sample_pairs(
    dataset: TrackingDataset,
    n: int,
    rng: np.random.Generator | None = None,
    max_gap: int = 6,
    jitter: float = 0.25,
    with_masks: bool = False,
) -> PairBatch:
    """Draw ``n`` exemplar/search pairs from random sequences."""
    rng = default_rng(rng)
    ez = np.empty((n, 3, EXEMPLAR_SIZE, EXEMPLAR_SIZE), dtype=np.float32)
    sx = np.empty((n, 3, SEARCH_SIZE, SEARCH_SIZE), dtype=np.float32)
    gts = np.empty((n, 4))
    masks = np.empty((n, MASK_SIZE, MASK_SIZE), dtype=np.float32) if with_masks \
        else None
    for i in range(n):
        seq = dataset[int(rng.integers(len(dataset)))]
        t0 = int(rng.integers(len(seq)))
        t1 = int(np.clip(t0 + rng.integers(-max_gap, max_gap + 1), 0,
                         len(seq) - 1))
        zbox = seq.boxes[t0]
        xbox = seq.boxes[t1]

        zside = EXEMPLAR_CONTEXT * float(np.sqrt(zbox[2] * zbox[3]))
        ez[i], _ = crop_and_resize(
            seq.frames[t0], (zbox[0], zbox[1]), zside, EXEMPLAR_SIZE
        )

        sside = SEARCH_CONTEXT * float(np.sqrt(xbox[2] * xbox[3]))
        off = rng.uniform(-jitter, jitter, size=2) * sside
        center = (xbox[0] + off[0], xbox[1] + off[1])
        sx[i], frame = crop_and_resize(
            seq.frames[t1], center, sside, SEARCH_SIZE
        )
        x0, y0, s = frame
        gts[i] = [
            (xbox[0] - x0) / s,
            (xbox[1] - y0) / s,
            xbox[2] / s,
            xbox[3] / s,
        ]
        if with_masks:
            if seq.masks is None:
                raise ValueError("dataset has no masks; use make_youtubevos")
            masks[i] = _crop_mask(seq.masks[t1], frame, MASK_SIZE)
    return PairBatch(ez, sx, gts, masks)


@dataclass(frozen=True)
class TrackTrainConfig:
    """Budget and loss weights for Siamese training.

    Resilience knobs mirror the detection trainer's:
    ``checkpoint_dir`` enables durable checkpoints every
    ``checkpoint_every`` steps (atomic + checksummed, full state —
    :class:`repro.resilience.CheckpointManager`), ``resume=True``
    restarts from the newest good one, and the ``anomaly_guard`` rolls
    a NaN/inf step back and halves the learning rate.
    """

    steps: int = 60
    batch_size: int = 8
    lr: float = 1e-3
    pos_iou: float = 0.5
    neg_iou: float = 0.3
    loc_weight: float = 1.0
    mask_weight: float = 1.0
    seed: int = 0
    checkpoint_dir: str | None = None
    checkpoint_every: int = 10  # steps between checkpoints
    keep_checkpoints: int = 3
    resume: bool = False
    anomaly_guard: bool = True
    anomaly_lr_factor: float = 0.5
    anomaly_lr_min: float = 1e-8


class SiameseTrainer:
    """Train a :class:`SiamRPN` (or :class:`SiamMask`) on pairs."""

    def __init__(self, model: SiamRPN, config: TrackTrainConfig | None = None):
        self.model = model
        self.config = config or TrackTrainConfig()
        self.is_mask = isinstance(model, SiamMask)

    # ------------------------------------------------------------------ #
    def _anchor_targets(
        self, gt_boxes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-pair anchor labels and regression targets.

        Returns (labels (N, A, R, R) in {1, 0, -1=ignore}, loc targets
        (N, A, R, R, 4), positive mask).
        """
        cfg = self.config
        anchors = self.model.anchors
        n = len(gt_boxes)
        a, r = anchors.n_anchors, anchors.response
        labels = np.full((n, a, r, r), -1.0)
        loc_t = np.zeros((n, a, r, r, 4))
        for i, gt in enumerate(gt_boxes):
            ious = anchors.iou_with(gt)
            labels[i][ious < cfg.neg_iou] = 0.0
            labels[i][ious >= cfg.pos_iou] = 1.0
            best = np.unravel_index(ious.argmax(), ious.shape)
            labels[i][best] = 1.0  # always at least one positive
            loc_t[i] = anchors.encode(gt)
        pos = labels == 1.0
        return labels, loc_t, pos

    def loss(self, batch: PairBatch) -> Tensor:
        """Total loss for one batch (cls + loc [+ mask])."""
        cfg = self.config
        labels, loc_t, pos = self._anchor_targets(batch.gt_boxes)
        n = len(batch.gt_boxes)
        a, r = self.model.n_anchors, self.model.response

        if self.is_mask:
            cls, loc, mask_logits = self.model.forward_with_mask(
                Tensor(batch.exemplars), Tensor(batch.searches)
            )
        else:
            cls, loc = self.model(
                Tensor(batch.exemplars), Tensor(batch.searches)
            )
            mask_logits = None

        cls = cls.reshape(n, a, r, r)
        valid = (labels >= 0).astype(np.float64)
        target = np.clip(labels, 0.0, 1.0)
        # weighted BCE over valid anchors
        elem = cls.relu() - cls * Tensor(target) + (
            ((-cls.abs()).exp() + 1.0).log()
        )
        cls_loss = (elem * Tensor(valid)).sum() * (1.0 / max(valid.sum(), 1.0))

        loc_pred = loc.reshape(n, a, 4, r, r).transpose(0, 1, 3, 4, 2)
        diff = loc_pred - Tensor(loc_t)
        l1 = (diff * diff) * Tensor(pos[..., None].astype(np.float64))
        loc_loss = l1.sum() * (1.0 / max(pos.sum() * 4, 1.0))

        total = cls_loss + loc_loss * cfg.loc_weight
        if mask_logits is not None and batch.gt_masks is not None:
            mh = mask_logits.shape[-1]
            gt_masks = batch.gt_masks
            if gt_masks.shape[-1] != mh:
                gt_masks = resize_bilinear(gt_masks[:, None], (mh, mh))[:, 0]
            mask_loss = F.binary_cross_entropy_with_logits(
                mask_logits.reshape(n, mh, mh), gt_masks
            )
            total = total + mask_loss * cfg.mask_weight
        return total

    def fit(
        self,
        dataset: TrackingDataset,
        rng: np.random.Generator | None = None,
    ) -> list[float]:
        """Run the training loop; returns the per-step loss curve."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed) if rng is None else default_rng(rng)
        opt = Adam(self.model.parameters(), lr=cfg.lr)
        losses: list[float] = []
        self.model.train()

        manager = None
        if cfg.checkpoint_dir is not None:
            manager = CheckpointManager(cfg.checkpoint_dir,
                                        keep=cfg.keep_checkpoints)
        start_step = 0
        if manager is not None and cfg.resume:
            restored = manager.load_latest(self.model, opt, rng=rng)
            if restored is not None:
                start_step = restored.step + 1
                if restored.extra and "losses" in restored.extra:
                    losses = list(restored.extra["losses"])
                obs.inc("track/resumed")
                self.model.train()

        guard = None
        if cfg.anomaly_guard:
            guard = AnomalyGuard(self.model, opt,
                                 lr_factor=cfg.anomaly_lr_factor,
                                 lr_min=cfg.anomaly_lr_min)

        model_kind = type(self.model).__name__
        with obs.span("track/fit", steps=cfg.steps,
                      batch_size=cfg.batch_size, model=model_kind) as sp:
            for step in range(start_step, cfg.steps):
                batch = sample_pairs(
                    dataset, cfg.batch_size, rng, with_masks=self.is_mask
                )
                spec = faults.trigger("train.batch")
                if spec is not None:
                    batch.searches = faults.apply_array_fault(
                        batch.searches, spec
                    )
                loss = self.loss(batch)
                self.model.zero_grad()
                loss.backward()
                if guard is not None and guard.check(loss.item()):
                    continue  # rolled back; skip the poisoned step
                opt.step()
                if guard is not None:
                    guard.commit()
                losses.append(loss.item())
                obs.observe("track/loss", losses[-1])
                obs.inc("track/steps")
                if (
                    manager is not None
                    and (step + 1) % max(cfg.checkpoint_every, 1) == 0
                ):
                    manager.save(step, self.model, opt, rng=rng,
                                 extra={"losses": list(losses)})
            if losses:
                sp.set(final_loss=round(losses[-1], 5))
        self.model.eval()
        return losses
