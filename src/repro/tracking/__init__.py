"""Object tracking: Siamese trackers and GOT-10K evaluation (Section 7)."""

from .anchors import RpnAnchors
from .evaluator import TrackerSpeedModel, evaluate_tracker, run_tracker
from .metrics import (
    TrackingScores,
    average_overlap,
    score_tracking,
    sequence_ious,
    success_curve,
    success_rate,
)
from .protocol import (
    ExperimentResult,
    load_predictions,
    run_experiment,
    score_experiment,
)
from .siamfc import SiamFC, SiamFCTracker, SiamFCTrainer
from .siamese import (
    EXEMPLAR_CONTEXT,
    SEARCH_CONTEXT,
    AdjustLayer,
    crop_and_resize,
    xcorr_depthwise,
)
from .siammask import MASK_SIZE, SiamMask, SiamMaskTracker, mask_to_box
from .siamrpn import EXEMPLAR_SIZE, SEARCH_SIZE, SiamRPN, SiamRPNTracker
from .trainer import PairBatch, SiameseTrainer, TrackTrainConfig, sample_pairs

__all__ = [
    "RpnAnchors",
    "TrackerSpeedModel",
    "evaluate_tracker",
    "run_tracker",
    "TrackingScores",
    "average_overlap",
    "success_rate",
    "success_curve",
    "sequence_ious",
    "score_tracking",
    "AdjustLayer",
    "crop_and_resize",
    "xcorr_depthwise",
    "EXEMPLAR_CONTEXT",
    "SEARCH_CONTEXT",
    "ExperimentResult",
    "run_experiment",
    "score_experiment",
    "load_predictions",
    "SiamFC",
    "SiamFCTracker",
    "SiamFCTrainer",
    "SiamMask",
    "SiamMaskTracker",
    "MASK_SIZE",
    "mask_to_box",
    "SiamRPN",
    "SiamRPNTracker",
    "EXEMPLAR_SIZE",
    "SEARCH_SIZE",
    "PairBatch",
    "SiameseTrainer",
    "TrackTrainConfig",
    "sample_pairs",
]
