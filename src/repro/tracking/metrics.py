"""GOT-10K evaluation metrics (Section 7).

"Average overlap is defined as the mean of intersection over union (IoU)
between prediction and ground truth bounding boxes, while success rate
is defined as the proportion of predictions where the IoU is beyond some
threshold."  Tables 8/9 report AO, SR@0.50 and SR@0.75.
"""

from __future__ import annotations

import numpy as np

from ..detection.boxes import box_iou, cxcywh_to_xyxy

__all__ = ["average_overlap", "success_rate", "sequence_ious", "TrackingScores",
           "score_tracking", "success_curve"]


def sequence_ious(pred_cxcywh: np.ndarray, gt_cxcywh: np.ndarray) -> np.ndarray:
    """Per-frame IoUs for one sequence ((T, 4) arrays)."""
    return box_iou(cxcywh_to_xyxy(pred_cxcywh), cxcywh_to_xyxy(gt_cxcywh))


def average_overlap(ious: np.ndarray) -> float:
    """AO: mean IoU over all evaluated frames."""
    ious = np.asarray(ious, dtype=np.float64)
    if ious.size == 0:
        raise ValueError("no IoUs to average")
    return float(ious.mean())


def success_rate(ious: np.ndarray, threshold: float) -> float:
    """SR@threshold: fraction of frames with IoU above the threshold."""
    ious = np.asarray(ious, dtype=np.float64)
    if ious.size == 0:
        raise ValueError("no IoUs")
    return float((ious > threshold).mean())


class TrackingScores:
    """AO / SR@0.50 / SR@0.75 bundle, as Tables 8/9 report."""

    def __init__(self, ious: np.ndarray) -> None:
        self.ious = np.asarray(ious, dtype=np.float64)
        self.ao = average_overlap(self.ious)
        self.sr50 = success_rate(self.ious, 0.50)
        self.sr75 = success_rate(self.ious, 0.75)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TrackingScores(AO={self.ao:.3f}, SR0.50={self.sr50:.3f}, "
            f"SR0.75={self.sr75:.3f})"
        )


def success_curve(
    ious: np.ndarray, thresholds: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """GOT-10K success plot: SR over an overlap-threshold sweep.

    Returns (thresholds, success rates); the area under this curve
    equals AO in the limit of a dense sweep.
    """
    ious = np.asarray(ious, dtype=np.float64)
    if thresholds is None:
        thresholds = np.linspace(0.0, 1.0, 21)
    rates = np.array([(ious > t).mean() for t in thresholds])
    return thresholds, rates


def score_tracking(
    all_pred: list[np.ndarray], all_gt: list[np.ndarray]
) -> TrackingScores:
    """Score a whole dataset (list of per-sequence (T, 4) box arrays).

    The first frame of each sequence is the initialization frame and is
    excluded, following the GOT-10K protocol.
    """
    if len(all_pred) != len(all_gt):
        raise ValueError("prediction/gt sequence counts differ")
    ious = []
    for pred, gt in zip(all_pred, all_gt):
        if len(pred) != len(gt):
            raise ValueError("sequence length mismatch")
        ious.append(sequence_ious(pred[1:], gt[1:]))
    return TrackingScores(np.concatenate(ious))
