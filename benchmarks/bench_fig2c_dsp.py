"""Figure 2(c) — DSP utilization vs weight/feature-map bit widths.

Reproduces the paper's observation that "small changes may lead to
diverse DSP utilization": with 128 multiplier lanes and 16-bit FMs,
moving weights from 15 to 14 bits halves DSP usage from 128 to 64
(two products pack into one DSP48E2 once the weight fits the packed
port).
"""

from __future__ import annotations

from common import print_table

from repro.hardware.fpga import dsp_count

LANES = 128
W_BITS = (11, 12, 13, 14, 15, 16, 17, 18)
FM_BITS = (12, 13, 14, 15, 16)


def sweep() -> dict[int, list[int]]:
    return {
        fm: [dsp_count(LANES, w, fm) for w in W_BITS] for fm in FM_BITS
    }


def test_fig2c_dsp_vs_bits(benchmark):
    result = benchmark.pedantic(sweep, rounds=5, iterations=1)
    rows = [[f"FM{fm}"] + result[fm] for fm in FM_BITS]
    print_table(
        f"Fig. 2(c) — DSPs for {LANES} multiplier lanes",
        ["config"] + [f"W{w}" for w in W_BITS],
        rows,
    )
    # the exact numbers the paper calls out
    fm16 = dict(zip(W_BITS, result[16]))
    assert fm16[15] == 128
    assert fm16[14] == 64
    # monotone non-decreasing in weight bits at fixed FM bits
    for fm in FM_BITS:
        vals = result[fm]
        assert all(b >= a for a, b in zip(vals, vals[1:]))


if __name__ == "__main__":
    res = sweep()
    print_table(
        "Fig. 2(c)",
        ["config"] + [f"W{w}" for w in W_BITS],
        [[f"FM{fm}"] + res[fm] for fm in FM_BITS],
    )
