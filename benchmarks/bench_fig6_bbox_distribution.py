"""Figure 6 — distribution of bounding-box relative size.

The paper reports that 91% of DAC-SDC objects occupy less than 9% of the
image and 31% less than 1%.  Our synthetic dataset's size distribution is
*calibrated* to those two quantiles; this bench regenerates the histogram
+ cumulative curve from a fresh 50k-sample draw and from an actual
rendered dataset's labels.
"""

from __future__ import annotations

import numpy as np
from common import print_table

from repro.datasets import (
    cumulative_fraction_below,
    make_dacsdc,
    relative_size_histogram,
    sample_area_ratio,
)


def sample_distribution(n: int = 50_000) -> np.ndarray:
    return sample_area_ratio(n, np.random.default_rng(6))


def test_fig6_distribution(benchmark):
    ratios = benchmark.pedantic(sample_distribution, rounds=1, iterations=1)
    edges, frac, cum = relative_size_histogram(ratios)
    rows = [
        [f"{edges[i]*100:.0f}-{edges[i+1]*100:.0f}%",
         f"{frac[i]*100:.1f}%", f"{cum[i]*100:.1f}%"]
        for i in range(min(12, len(frac)))
    ]
    print_table(
        "Fig. 6 — relative bbox size distribution (bars + cumulative)",
        ["size bin", "fraction", "cumulative"],
        rows,
    )
    below1 = cumulative_fraction_below(ratios, 0.01)
    below9 = cumulative_fraction_below(ratios, 0.09)
    print(f"\n< 1% of image area: {below1:.1%} (paper: 31%)")
    print(f"< 9% of image area: {below9:.1%} (paper: 91%)")
    assert below1 == pytest_approx(0.31, 0.02)
    assert below9 == pytest_approx(0.91, 0.02)


def pytest_approx(target: float, tol: float):
    import pytest

    return pytest.approx(target, abs=tol)


def test_fig6_rendered_labels_follow_distribution(benchmark):
    """The actual rendered dataset's labels also follow Fig. 6 (up to
    the minimum-pixel clamp at miniature resolution)."""

    def render():
        ds = make_dacsdc(400, image_hw=(160, 360), seed=9)
        return ds.boxes[:, 2] * ds.boxes[:, 3]

    areas = benchmark.pedantic(render, rounds=1, iterations=1)
    below9 = cumulative_fraction_below(areas, 0.09)
    # at contest resolution the clamp is negligible: ~91% under 9%
    assert 0.80 <= below9 <= 0.98


if __name__ == "__main__":
    ratios = sample_distribution()
    print(f"<1%: {cumulative_fraction_below(ratios, 0.01):.3f}")
    print(f"<9%: {cumulative_fraction_below(ratios, 0.09):.3f}")
