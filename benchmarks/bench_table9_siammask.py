"""Table 9 — SiamMask on GOT-10K with ResNet-50 vs SkyNet backbones.

SiamMask adds a segmentation branch, so training uses the mask-annotated
YouTube-VOS stand-in and evaluation runs on the GOT-10K stand-in, as in
the paper (Section 7.2).  The paper's shape: SkyNet reaches slightly
*better* AO than ResNet-50 (0.390 vs 0.380) at 1.73x the speed, and
SiamMask outperforms SiamRPN++ under the same backbone.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest
from common import print_table, tracking_data, tracking_mask_data

from repro.core import SkyNetBackbone
from repro.tracking import (
    SiamMask,
    SiamMaskTracker,
    SiameseTrainer,
    TrackTrainConfig,
    TrackerSpeedModel,
    evaluate_tracker,
)
from repro.zoo import resnet50

PAPER = {
    "ResNet-50": (0.380, 0.439, 0.153, 17.44),
    "SkyNet": (0.390, 0.442, 0.158, 30.15),
}
TRAIN_STEPS = 120
BACKBONES = {
    "ResNet-50": lambda rng: resnet50(0.125, rng=rng),
    "SkyNet": lambda rng: SkyNetBackbone("C", width_mult=0.25, rng=rng),
}
FULL_BACKBONES = {
    "ResNet-50": lambda: resnet50(1.0),
    "SkyNet": lambda: SkyNetBackbone("C"),
}


@lru_cache(maxsize=None)
def run_table9():
    mask_train = tracking_mask_data()
    _, test = tracking_data()
    speed = TrackerSpeedModel()
    results = {}
    for name, factory in BACKBONES.items():
        model = SiamMask(factory(np.random.default_rng(0)), feat_ch=16,
                         rng=np.random.default_rng(1))
        trainer = SiameseTrainer(
            model, TrackTrainConfig(steps=TRAIN_STEPS, batch_size=8,
                                    lr=2e-3)
        )
        trainer.fit(mask_train)
        scores = evaluate_tracker(SiamMaskTracker(model), test)
        fps = speed.fps(FULL_BACKBONES[name](), with_mask=True)
        results[name] = (scores, fps)
    return results


def test_table9_siammask_backbones(benchmark):
    results = benchmark.pedantic(run_table9, rounds=1, iterations=1)
    rows = []
    for name, (scores, fps) in results.items():
        p_ao, p_sr50, p_sr75, p_fps = PAPER[name]
        rows.append(
            [name, f"{scores.ao:.3f}", f"{scores.sr50:.3f}",
             f"{scores.sr75:.3f}", f"{fps:.2f}",
             f"{p_ao:.3f}/{p_fps:.2f}"]
        )
    print_table(
        "Table 9 — SiamMask backbones on GOT-10K (paper column: AO/FPS)",
        ["backbone", "AO", "SR0.50", "SR0.75", "FPS (model)",
         "paper AO/FPS"],
        rows,
    )
    ao = {n: r[0].ao for n, r in results.items()}
    fps = {n: r[1] for n, r in results.items()}
    assert fps["SkyNet"] > fps["ResNet-50"]
    assert fps["SkyNet"] / fps["ResNet-50"] == pytest.approx(1.73, rel=0.15)
    assert fps["ResNet-50"] == pytest.approx(17.44, rel=0.12)
    # SkyNet's accuracy is at least comparable (the paper shows it ahead)
    assert ao["SkyNet"] >= ao["ResNet-50"] - 0.08
    assert min(ao.values()) > 0.12


if __name__ == "__main__":
    for name, (scores, fps) in run_table9().items():
        print(f"{name:10s} AO {scores.ao:.3f} FPS {fps:.1f}")
