"""Figure 1 vs Figure 3 — top-down compression vs the bottom-up flow.

The paper's central argument: the conventional top-down flow (reference
DNN → prune/quantize/resize → hardware check → iterate) struggles to
balance accuracy and hardware constraints, while the bottom-up flow
builds hardware awareness in from the first Bundle.  This bench runs
both flows on the same data toward the same Ultra96 latency target and
compares the (accuracy, latency) endpoints — plus the number of
software/hardware iterations each needed.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from common import print_table

from repro.core import (
    BottomUpFlow,
    CompressionState,
    FlowConfig,
    PSOConfig,
    TopDownConfig,
    TopDownFlow,
    bundle_by_name,
)
from repro.datasets import make_dacsdc_splits
from repro.hardware.fpga import FpgaLatencyModel
from repro.hardware.spec import ULTRA96

LATENCY_TARGET_MS = 1.2
INPUT_HW = (32, 64)


@lru_cache(maxsize=None)
def flow_data():
    return make_dacsdc_splits(160, 40, image_hw=INPUT_HW, seed=23)


@lru_cache(maxsize=None)
def run_top_down():
    train, val = flow_data()
    cfg = TopDownConfig(
        reference="resnet18",
        width_mult=0.25,
        initial_epochs=8,
        retrain_epochs=2,
        latency_target_ms=LATENCY_TARGET_MS,
        schedule=(
            CompressionState(1.0, 0.0, None, None),
            CompressionState(1.0, 0.4, 12, 10),
            CompressionState(0.85, 0.6, 11, 9),
            CompressionState(0.75, 0.75, 10, 9),
            CompressionState(0.75, 0.85, 8, 8),
        ),
    )
    return TopDownFlow(train, val, cfg).run(np.random.default_rng(0))


@lru_cache(maxsize=None)
def run_bottom_up():
    train, val = flow_data()
    flow = BottomUpFlow(
        train,
        val,
        config=FlowConfig(
            sketch_channels=(8, 16, 24, 32),
            sketch_epochs=2,
            max_selected_bundles=2,
            pso=PSOConfig(
                particles_per_group=3,
                iterations=2,
                epochs_base=1,
                epochs_step=1,
                depth=5,
                n_pools=3,
                channel_choices=(4, 8, 12, 16, 24, 32),
            ),
            # match the top-down flow's total training budget
            # (8 initial + up to 3 retraining rounds)
            final_epochs=16,
        ),
        catalog=(bundle_by_name("dw3-pw"), bundle_by_name("conv3"),
                 bundle_by_name("pw")),
    )
    result = flow.run(np.random.default_rng(1))
    latency = FpgaLatencyModel(ULTRA96, batch=1).per_frame_latency_ms(
        result.final_dna.descriptor(INPUT_HW)
    )
    return result, latency


def test_flow_comparison(benchmark):
    def run_both():
        return run_top_down(), run_bottom_up()

    td, (bu, bu_latency) = benchmark.pedantic(run_both, rounds=1,
                                              iterations=1)
    rows = [
        ["top-down (ResNet-18 ref)", f"{td.iou:.3f}",
         f"{td.latency_ms:.2f}", td.iterations,
         "yes" if td.met_target else "no", td.state.describe()],
        ["bottom-up (ours)", f"{bu.final_iou:.3f}", f"{bu_latency:.2f}",
         1, "yes" if bu_latency <= LATENCY_TARGET_MS else "no",
         f"{bu.final_dna.bundle.name}, ch={bu.final_dna.channels}"],
    ]
    print_table(
        f"Flow comparison (Ultra96, latency target {LATENCY_TARGET_MS} ms)",
        ["flow", "IoU", "latency (ms)", "sw/hw iterations", "met target",
         "final design"],
        rows,
    )
    # the bottom-up design meets the hardware target by construction
    assert bu_latency <= LATENCY_TARGET_MS * 1.5
    # the top-down flow needed multiple compress->evaluate iterations
    # (the paper's "tedious iterative explorations") or missed the target
    assert td.iterations > 1 or not td.met_target
    # at the latency target, bottom-up accuracy is competitive
    if td.met_target:
        assert bu.final_iou >= td.iou - 0.10


if __name__ == "__main__":
    td = run_top_down()
    bu, lat = run_bottom_up()
    print("top-down:", td.iou, td.latency_ms, td.iterations)
    print("bottom-up:", bu.final_iou, lat)
