"""Table 2 — backbone comparison on the DAC-SDC task.

Same detection back-end (two-anchor YOLO head), same *training compute
budget*, different backbones.  The paper's finding: parameter count
predicts nothing — ResNet-18 (11.18 M) reaches 0.61 IoU while the larger
ResNet-34/50 fall to 0.26/0.32 and VGG-16 to 0.25, and the 0.44 M SkyNet
wins at 0.73.

Protocol note: the budget here is *equal training MACs* (the contest
reality: a fixed compute/time envelope on given hardware), so the cheap
SkyNet iterates through many more optimization steps than the heavy
backbones within the same budget — the exact advantage that lets
hardware-efficient designs win development races.  Models train at
width_mult=0.25 on the synthetic split; the parameter column reports
the full-width (paper-scale) counts.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest
from common import IMAGE_HW, build_detector, print_table, train_detector

from repro.zoo import build_backbone

BACKBONES = ("resnet18", "resnet34", "resnet50", "vgg16", "skynet")
PAPER = {
    "resnet18": (11.18, 0.61),
    "resnet34": (21.28, 0.26),
    "resnet50": (23.51, 0.32),
    "vgg16": (14.71, 0.25),
    "skynet": (0.44, 0.73),
}
TRAIN_WIDTH = 0.25
SKYNET_EPOCHS = 60  # the reference budget; others get equal MACs


def _epoch_budget(name: str, reference_macs: float) -> int:
    bb = build_backbone(name, width_mult=TRAIN_WIDTH)
    macs = bb.layer_descriptors(IMAGE_HW).total_macs
    return max(1, int(round(SKYNET_EPOCHS * reference_macs / macs)))


@lru_cache(maxsize=None)
def run_comparison():
    reference_macs = build_backbone(
        "skynet", width_mult=TRAIN_WIDTH
    ).layer_descriptors(IMAGE_HW).total_macs
    results = {}
    for name in BACKBONES:
        epochs = _epoch_budget(name, reference_macs)
        bb = build_backbone(name, width_mult=TRAIN_WIDTH,
                            rng=np.random.default_rng(0))
        det = build_detector(bb, seed=0)
        result = train_detector(det, epochs=epochs, seed=0)
        full_params = build_backbone(name, width_mult=1.0).num_parameters()
        results[name] = (full_params / 1e6, result.final_iou, epochs)
    return results


def test_table2_backbone_comparison(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = []
    for name in BACKBONES:
        params_m, iou, epochs = results[name]
        paper_p, paper_iou = PAPER[name]
        rows.append(
            [name, f"{params_m:.2f}M", f"{iou:.3f}", epochs,
             f"{paper_p:.2f}M", f"{paper_iou:.2f}"]
        )
    print_table(
        "Table 2 — backbones, same back-end, equal training-MAC budget",
        ["backbone", "params (repro)", "IoU (repro)", "epochs in budget",
         "params (paper)", "IoU (paper)"],
        rows,
    )
    ious = {n: r[1] for n, r in results.items()}
    params = {n: r[0] for n, r in results.items()}
    # the headline shape: SkyNet wins despite being by far the smallest
    assert ious["skynet"] == max(ious.values())
    assert params["skynet"] == min(params.values())
    # parameter counts match the paper's column
    for name in BACKBONES:
        assert params[name] == pytest.approx(PAPER[name][0], rel=0.02)
    # "no clear clues regarding parameter size and inference accuracy":
    # the largest backbone is not the runner-up
    order = sorted(ious, key=ious.get, reverse=True)
    assert order[1] != max(params, key=params.get)


if __name__ == "__main__":
    for name, (p, iou, ep) in run_comparison().items():
        print(f"{name:10s} {p:6.2f}M params  IoU {iou:.3f} ({ep} epochs)")
