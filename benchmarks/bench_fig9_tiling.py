"""Figure 9 — the batch + tiling scheme for the FPGA FM buffer.

Quantifies the paper's Section 6.4.1 argument under a fixed on-chip
buffer: no batching leaves the buffer idle on late layers; naive
batching multiplies DMA rounds and IP invocations; stitching four inputs
into a 2x2 mosaic keeps weight reuse while cutting invocations ~4x.
"""

from __future__ import annotations

from common import contest_descriptor, print_table

from repro.core import SkyNetBackbone
from repro.hardware.fpga import plan_batch_tiling


def run_plans():
    desc = contest_descriptor(SkyNetBackbone("C"))
    single, _ = plan_batch_tiling(desc, batch=1)
    naive4, tiled4 = plan_batch_tiling(desc, batch=4)
    return single, naive4, tiled4


def test_fig9_batch_tiling(benchmark):
    single, naive4, tiled4 = benchmark.pedantic(run_plans, rounds=1,
                                                iterations=1)
    rows = []
    for label, plan in (
        ("no batching", single),
        ("naive batch=4", naive4),
        ("tiled 2x2 (SkyNet)", tiled4),
    ):
        rows.append(
            [
                label,
                plan.rounds,
                f"{plan.mean_utilization:.2f}",
                f"{plan.weight_fetch_per_image:.2f}",
            ]
        )
    print_table(
        "Fig. 9 — FM-buffer schemes on SkyNet (Ultra96-class buffer)",
        ["scheme", "DMA rounds", "mean buffer util", "weight fetches/img"],
        rows,
    )
    # tiling cuts rounds ~4x versus naive batching...
    assert tiled4.rounds * 3 < naive4.rounds
    # ...while matching its weight reuse...
    assert tiled4.weight_fetch_per_image == naive4.weight_fetch_per_image
    # ...and beats single-image processing on buffer utilization
    assert tiled4.mean_utilization > single.mean_utilization


if __name__ == "__main__":
    for p in run_plans():
        print(p)
