"""Table 6 — DAC-SDC FPGA-track final results (Ultra96, hidden test set).

As with Table 5: (1) exact scoring recomputation of the published field,
and (2) our modeled SkyNet row — Ultra96 IP-based latency model with the
scheme-1 quantization (9-bit FMs, 11-bit weights) applied to the trained
model for the accuracy column.
"""

from __future__ import annotations

import pytest
from common import contest_descriptor, detection_data, print_table, trained_skynet

from repro.contest import (
    FPGA_2018,
    FPGA_2019,
    FPGA_TRACK,
    evaluate_submission,
    score_entries,
)
from repro.contest.scoring import implied_field_energy
from repro.core import SkyNetBackbone
from repro.detection.metrics import evaluate_detector
from repro.hardware.quantization import quantized_inference
from repro.hardware.spec import ULTRA96


def recompute_field():
    field = list(FPGA_2019)
    e_bar = implied_field_energy(field, FPGA_TRACK)
    return score_entries([e.as_dict() for e in field], FPGA_TRACK,
                         field_energy=e_bar), field


def our_submission():
    det, float_iou = trained_skynet()
    _, val = detection_data()
    desc = contest_descriptor(SkyNetBackbone("C"))
    sub = evaluate_submission(det, val, desc, ULTRA96, batch=4,
                              utilization=0.59, name="SkyNet-FPGA (repro)")
    # the deployed FPGA design runs quantized (Table 7 scheme 1)
    with quantized_inference(det, w_bits=11, fm_bits=9):
        q_iou = evaluate_detector(det, val.images, val.boxes)
    return sub, float_iou, q_iou


def test_table6_scoring_recomputation(benchmark):
    scored, field = benchmark.pedantic(recompute_field, rounds=1,
                                       iterations=1)
    rows = [
        [s.name, f"{s.iou:.3f}", f"{s.fps:.2f}", f"{s.power_w:.2f}",
         f"{s.total_score:.3f}"]
        for s in scored
    ]
    print_table(
        "Table 6 (2019 rows, recomputed with Eqs. 2-5)",
        ["team", "IoU", "FPS", "Power(W)", "Total score"],
        rows,
    )
    published = {e.name: e.total_score for e in field}
    for s in scored:
        assert s.total_score == pytest.approx(published[s.name], abs=0.01)
    assert "SkyNet" in scored[0].name
    # the paper's headline pattern: SkyNet wins on ACCURACY, not speed
    skynet = scored[0]
    assert any(s.fps > skynet.fps for s in scored[1:])
    assert all(s.iou < skynet.iou for s in scored[1:])


def test_table6_modeled_skynet_row(benchmark):
    sub, float_iou, q_iou = benchmark.pedantic(our_submission, rounds=1,
                                               iterations=1)
    rows = [
        ["SkyNet (paper)", "0.716", "25.05", "7.26"],
        ["SkyNet (repro, modeled)", f"{q_iou:.3f}*", f"{sub.fps:.2f}",
         f"{sub.power_w:.2f}"],
    ]
    print_table(
        "Table 6 — our modeled SkyNet system row "
        "(*synthetic-data IoU under scheme-1 quantization)",
        ["entry", "IoU", "FPS", "Power(W)"],
        rows,
    )
    assert sub.fps == pytest.approx(25.05, rel=0.06)
    assert sub.power_w == pytest.approx(7.26, rel=0.08)
    # quantized accuracy is close to float accuracy (Table 7 scheme 1)
    assert q_iou > float_iou - 0.08


if __name__ == "__main__":
    scored, _ = recompute_field()
    for s in scored:
        print(s)
