"""Serving throughput under injected faults + breaker recovery latency.

The DAC-SDC stream is long and unattended: the interesting number is
not peak throughput but what survives faults.  Two measurements:

* **Throughput under a 1 % worker-crash rate** — every batch pickup has
  a 1 % chance of killing its worker thread
  (``FaultSpec("serve.worker", "crash", rate=0.01, times=None)``); the
  watchdog requeues the dropped batch and respawns the worker.  The
  headline is the throughput ratio vs the fault-free baseline *with
  zero lost accepted requests* — recovery should cost a few percent,
  not halve the server.
* **Breaker recovery latency** — with a failing primary runner the
  circuit breaker trips open (traffic fails over to the eager twin);
  once the primary heals, the half-open probe re-closes it.  Measured:
  the wall time from healing the primary to the breaker reporting
  ``closed`` under a steady probe load.
* **Process-backend crash recovery** — the same zero-lost contract for
  ``worker_backend="process"``: the ``serve.procworker`` fault site
  SIGKILLs real child processes from the parent hot path, and the
  ProcWorkerDied -> retry -> respawn ladder must resolve every
  accepted request OK.

Run as a script to (re)write ``BENCH_resilience.json`` at the repo
root:

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np
from common import print_table

from repro.resilience import CLOSED, FaultPlan, FaultSpec, faults
from repro.runtime import ServeConfig
from repro.serve import InferenceServer

REQUESTS = 256
CRASH_RATE = 0.01
REPS = 3  # best-of-N per arm: the host's timing is noisy
BREAKER_REPS = 5


def _echo_factory():
    """A deliberately cheap runner so the measured cost is the recovery
    machinery (requeue + respawn), not the forward."""
    def runner(x):
        time.sleep(0.0005)  # a stand-in 0.5 ms forward
        return x

    return runner


def _frames(n: int) -> list[np.ndarray]:
    rng = np.random.default_rng(0)
    return [rng.normal(0, 1, (1, 3, 16, 32)).astype(np.float32)
            for _ in range(n)]


def _pump(server: InferenceServer, frames: list[np.ndarray],
          concurrency: int = 4) -> tuple[float, int]:
    """Offer ``frames`` from ``concurrency`` clients; returns
    (requests/s, ok count).  Shed requests are resubmitted — under
    faults the queue can briefly back up while a worker respawns."""
    futures: list = [None] * len(frames)

    def client(start: int) -> None:
        for i in range(start, len(frames), concurrency):
            while True:
                future = server.submit(frames[i])
                if future.result(timeout=30.0).status != "shed":
                    futures[i] = future
                    break
                time.sleep(0.001)

    t0 = time.perf_counter()
    clients = [threading.Thread(target=client, args=(c,), daemon=True)
               for c in range(concurrency)]
    for t in clients:
        t.start()
    for t in clients:
        t.join()
    wall = time.perf_counter() - t0
    ok = sum(1 for f in futures if f.result(timeout=30.0).ok)
    return len(frames) / wall, ok


def measure_crash_throughput(requests: int = REQUESTS,
                             reps: int = REPS) -> dict:
    frames = _frames(requests)
    config = ServeConfig(queue_depth=32, max_batch_size=4,
                         max_wait_ms=1.0, num_workers=2,
                         watchdog_interval_ms=5.0)

    baseline_rps = 0.0
    for _ in range(reps):
        with InferenceServer(_echo_factory, config) as server:
            rps, ok = _pump(server, frames)
            assert ok == requests
            baseline_rps = max(baseline_rps, rps)

    faulted_rps, respawns, lost = 0.0, 0, 0
    for rep in range(reps):
        plan = FaultPlan([FaultSpec("serve.worker", "crash",
                                    rate=CRASH_RATE, times=None)],
                         seed=rep)
        with InferenceServer(_echo_factory, config) as server:
            with faults.inject(plan):
                rps, ok = _pump(server, frames)
            lost += requests - ok
            respawns += server.stats.respawns
            faulted_rps = max(faulted_rps, rps)

    return {
        "baseline_rps": baseline_rps,
        "faulted_rps": faulted_rps,
        "throughput_ratio": faulted_rps / baseline_rps,
        "crash_rate": CRASH_RATE,
        "worker_respawns": respawns,
        "lost_requests": lost,
    }


def measure_breaker_recovery(reps: int = BREAKER_REPS) -> dict:
    """Wall time from healing the primary to the breaker re-closing."""
    broken = threading.Event()

    def primary_factory():
        def runner(x):
            if broken.is_set():
                raise RuntimeError("engine down")
            return x

        return runner

    config = ServeConfig(max_batch_size=1, max_wait_ms=0.0, max_retries=0,
                         bisect_failed_batches=False, breaker_threshold=3,
                         breaker_cooldown_ms=25.0, watchdog=False)
    frame = _frames(1)[0]
    latencies = []
    for _ in range(reps):
        broken.set()
        with InferenceServer(primary_factory, config,
                             fallback_factory=lambda: (lambda x: x),
                             ) as server:
            # Trip the breaker: three consecutive primary failures.
            for _ in range(config.breaker_threshold):
                server.submit(frame).result(timeout=10.0)
            assert server.breaker.state != CLOSED
            broken.clear()
            t0 = time.perf_counter()
            while server.breaker.state != CLOSED:
                assert server.submit(frame).result(timeout=10.0).ok
                time.sleep(0.002)
            latencies.append((time.perf_counter() - t0) * 1e3)
    return {
        "cooldown_ms": config.breaker_cooldown_ms,
        "recovery_ms_best": min(latencies),
        "recovery_ms_mean": sum(latencies) / len(latencies),
        "reps": reps,
    }


def measure_procworker_crash(requests: int = 48) -> dict:
    """Zero-lost contract for the process-pool backend under injected
    child SIGKILLs (a real model: spawn must pickle + re-import it)."""
    from repro.core import SkyNetBackbone
    from repro.detection import Detector
    from repro.runtime import Session

    rng = np.random.default_rng(0)
    det = Detector(SkyNetBackbone("C", width_mult=0.125, rng=rng))
    det.eval()
    frames = [rng.normal(0, 1, (3, 16, 32)).astype(np.float32)
              for _ in range(requests)]
    serve = ServeConfig(queue_depth=64, max_batch_size=4, max_wait_ms=1.0,
                        num_workers=1, worker_backend="process",
                        max_retries=2)
    plan = FaultPlan([FaultSpec("serve.procworker", "crash",
                                rate=0.05, times=3)], seed=0)
    t0 = time.perf_counter()
    with Session.load(det, serve=serve) as session, faults.inject(plan):
        futures = [session.submit(f) for f in frames]
        ok = sum(1 for f in futures if f.result(timeout=120.0).ok)
        respawns = session._procpool.respawns
        fallback = session.server.stats.snapshot()["fallback_batches"]
    return {
        "requests": requests,
        "ok": ok,
        "lost_requests": requests - ok,
        "crashes_injected": plan.fired("serve.procworker"),
        "respawns": respawns,
        "fallback_batches": fallback,
        "wall_s": time.perf_counter() - t0,
    }


def run_bench() -> dict:
    # The injected WorkerCrash escapes its thread by design; keep the
    # default excepthook from spamming the bench output with tracebacks.
    prev_hook = threading.excepthook

    def quiet_hook(hook_args):
        if not issubclass(hook_args.exc_type, faults.WorkerCrash):
            prev_hook(hook_args)

    threading.excepthook = quiet_hook
    try:
        crash = measure_crash_throughput()
        breaker = measure_breaker_recovery()
        procworker = measure_procworker_crash()
    finally:
        threading.excepthook = prev_hook
    return {"crash": crash, "breaker": breaker, "procworker": procworker}


def _print(results: dict) -> None:
    crash, breaker = results["crash"], results["breaker"]
    print_table(
        f"Throughput under {CRASH_RATE:.0%} worker-crash injection "
        f"({REQUESTS} requests, watchdog on)",
        ["arm", "req/s", "respawns", "lost"],
        [
            ["fault-free", f"{crash['baseline_rps']:.0f}", "-", "-"],
            ["1% crashes", f"{crash['faulted_rps']:.0f}",
             str(crash["worker_respawns"]), str(crash["lost_requests"])],
        ],
    )
    print(f"throughput under faults: "
          f"{crash['throughput_ratio']:.2f}x of baseline, "
          f"{crash['lost_requests']} lost requests")
    print(f"breaker recovery after heal: "
          f"best {breaker['recovery_ms_best']:.1f} ms, "
          f"mean {breaker['recovery_ms_mean']:.1f} ms "
          f"(cooldown {breaker['cooldown_ms']:.0f} ms)")
    proc = results["procworker"]
    print(f"process backend under {proc['crashes_injected']} child "
          f"SIGKILLs: {proc['ok']}/{proc['requests']} ok, "
          f"{proc['lost_requests']} lost, {proc['respawns']} respawns, "
          f"{proc['fallback_batches']} fallback batches")


def test_fault_recovery(benchmark):
    results = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    _print(results)
    # Zero accepted requests may be lost to worker crashes, and the
    # recovery machinery must not cripple throughput (generous floor so
    # CI machine jitter cannot flake).
    assert results["crash"]["lost_requests"] == 0
    assert results["crash"]["throughput_ratio"] >= 0.5
    assert results["breaker"]["recovery_ms_best"] >= 0.0
    # Process backend: every accepted request survives child SIGKILLs,
    # served by real (respawned) children — never the eager fallback.
    assert results["procworker"]["lost_requests"] == 0
    assert results["procworker"]["crashes_injected"] >= 1
    assert results["procworker"]["respawns"] >= 1
    assert results["procworker"]["fallback_batches"] == 0


if __name__ == "__main__":
    measured = run_bench()
    _print(measured)
    payload = {
        "bench": "fault_recovery",
        "requests": REQUESTS,
        "crash_rate": CRASH_RATE,
        "reps": REPS,
        "aggregation": "best-of-reps per arm (noisy shared host)",
        "methodology": (
            "throughput_ratio = offered-load throughput with a 1% "
            "chance of a worker-thread crash per batch pickup "
            "(watchdog requeues the in-flight batch and respawns the "
            "thread) / fault-free throughput on the same config; both "
            "arms use a ~0.5 ms stub forward so the measured cost is "
            "the recovery machinery.  lost_requests counts accepted "
            "requests that did not resolve ok across all faulted reps "
            "(must be 0).  Breaker recovery = wall time from healing "
            "the primary runner to the circuit breaker re-closing via "
            "its half-open probe, under a steady probe load.  "
            "procworker = the same zero-lost contract for "
            "worker_backend='process': the serve.procworker fault site "
            "SIGKILLs real child processes from the parent hot path; "
            "ProcWorkerDied -> retry -> respawn must resolve every "
            "accepted request OK with zero fallback batches."
        ),
        "results": measured,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
