"""Quantized integer backend vs the fp32 compiled engine (Section 6.4.1).

Two claims are measured:

* **Speed** — int8 storage halves (weights) / quarters (im2col and
  depthwise reads) the memory traffic of the bandwidth-bound SkyNet-A
  forward at the deployment resolution, so the integer plan must beat
  the fp32 compiled plan by >= 1.3x at batch 1.  Throughput on a shared
  host drifts between runs, so fp32 and quant calls are *interleaved
  pairwise* and the paired per-round ratios are reported alongside the
  per-arm minima.
* **Accuracy** — a Table-7-style bits sweep on the trained miniature
  SkyNet: validation IoU per scheme through the integer backend, plus
  the bit-exactness of every scheme against the fake-quant golden
  reference frozen at calibration.

Run as a script to (re)write ``BENCH_quant.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_quant.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from common import CONTEST_HW, detection_data, print_table, trained_skynet

from repro.core import SkyNetBackbone
from repro.detection.metrics import evaluate_detector
from repro.nn.engine import QuantConfig, compile_net
from repro.runtime import Session, SessionConfig

#: Fully fixed-point Table-7-style schemes, widest first.
SWEEP_SCHEMES = ((16, 16), (11, 9), (10, 8), (8, 8), (6, 6), (4, 4))
EXACT_SCHEMES = ((8, 8), (11, 9), (10, 8), (4, 6), (16, 16))
SPEED_SECONDS = 20.0  # time budget of the paired loop (script run)


# --------------------------------------------------------------------- #
# speed: paired interleaved fp32 vs int8
# --------------------------------------------------------------------- #
def run_speed(seconds: float = SPEED_SECONDS, max_pairs: int = 400) -> dict:
    rng = np.random.default_rng(0)
    h, w = CONTEST_HW
    x = rng.normal(0, 1, (1, 3, h, w)).astype(np.float32)
    bb = SkyNetBackbone("A", rng=np.random.default_rng(1))
    bb.eval()
    fp32 = compile_net(bb)
    quant = compile_net(bb, quant=QuantConfig(8, 8), calibration=x)

    # Speedup must not cost correctness: the integer plan reproduces
    # the calibration-time fake-quant reference bit for bit.
    diff = float(
        np.abs(quant(x) - quant.quant_stats["reference_output"]).max()
    )
    assert diff == 0.0, f"quant plan diverged from reference by {diff}"

    for _ in range(3):  # warm both arenas + BLAS pools
        fp32(x)
        quant(x)

    fp32_s, quant_s = [], []
    t_start = time.perf_counter()
    while (time.perf_counter() - t_start < seconds
           and len(fp32_s) < max_pairs):
        t0 = time.perf_counter()
        fp32(x)
        t1 = time.perf_counter()
        quant(x)
        t2 = time.perf_counter()
        fp32_s.append(t1 - t0)
        quant_s.append(t2 - t1)

    fp32_s, quant_s = np.array(fp32_s), np.array(quant_s)
    return {
        "pairs": int(len(fp32_s)),
        "fp32_ms_min": float(fp32_s.min() * 1e3),
        "fp32_ms_median": float(np.median(fp32_s) * 1e3),
        "quant_ms_min": float(quant_s.min() * 1e3),
        "quant_ms_median": float(np.median(quant_s) * 1e3),
        "min_ratio": float(fp32_s.min() / quant_s.min()),
        "paired_ratio_median": float(np.median(fp32_s / quant_s)),
        "max_abs_diff_vs_reference": diff,
    }


# --------------------------------------------------------------------- #
# exactness per scheme (small input: this is a correctness sweep)
# --------------------------------------------------------------------- #
def run_exactness() -> dict:
    rng = np.random.default_rng(2)
    bb = SkyNetBackbone("A", width_mult=0.25, rng=np.random.default_rng(1))
    bb.eval()
    x = rng.normal(0, 1, (2, 3, 32, 64)).astype(np.float32)
    diffs = {}
    for scheme in EXACT_SCHEMES:
        net = compile_net(bb, quant=QuantConfig(*scheme), calibration=x)
        diffs[net.quant.label] = float(
            np.abs(net(x) - net.quant_stats["reference_output"]).max()
        )
    return diffs


# --------------------------------------------------------------------- #
# Table-7-style bits sweep on the trained miniature detector
# --------------------------------------------------------------------- #
class _SessionPredictor:
    """``evaluate_detector`` adapter: route predict through a Session."""

    def __init__(self, session: Session) -> None:
        self._session = session

    def predict(self, images: np.ndarray) -> np.ndarray:
        return self._session.run(images)


def run_bits_sweep() -> list[dict]:
    det, fp32_iou = trained_skynet()
    _, val = detection_data()
    calibration = val.images[:8]
    rows = [{"scheme": "fp32", "iou": float(
        evaluate_detector(det, val.images, val.boxes))}]
    for scheme in SWEEP_SCHEMES:
        session = Session.load(
            det,
            SessionConfig(backend="quant", quant_bits=scheme,
                          fallback=False),
            calibration=calibration,
        )
        iou = evaluate_detector(
            _SessionPredictor(session), val.images, val.boxes
        )
        rows.append({"scheme": QuantConfig(*scheme).label,
                     "iou": float(iou)})
    return rows


def _print(speed: dict, exact: dict, sweep: list[dict]) -> None:
    print_table(
        f"fp32 vs w8/f8 compiled SkyNet-A @ {CONTEST_HW[0]}x{CONTEST_HW[1]}"
        f" ({speed['pairs']} interleaved pairs)",
        ["arm", "min ms", "median ms"],
        [
            ["fp32", f"{speed['fp32_ms_min']:.2f}",
             f"{speed['fp32_ms_median']:.2f}"],
            ["quant", f"{speed['quant_ms_min']:.2f}",
             f"{speed['quant_ms_median']:.2f}"],
            ["ratio", f"{speed['min_ratio']:.3f}x",
             f"{speed['paired_ratio_median']:.3f}x"],
        ],
    )
    print_table(
        "bit-exactness vs calibration reference (max |diff|)",
        ["scheme", "max diff"],
        [[label, f"{d:g}"] for label, d in exact.items()],
    )
    print_table(
        "Table-7-style bits sweep (miniature trained SkyNet)",
        ["scheme", "val IoU"],
        [[r["scheme"], f"{r['iou']:.3f}"] for r in sweep],
    )


def test_quant_speedup(benchmark):
    speed = benchmark.pedantic(
        lambda: run_speed(seconds=6.0), rounds=1, iterations=1
    )
    exact = run_exactness()
    _print(speed, exact, [])
    assert speed["max_abs_diff_vs_reference"] == 0.0
    assert all(d == 0.0 for d in exact.values())
    # Acceptance is >= 1.3x; assert with headroom so shared-host jitter
    # in the short test-mode loop cannot flake.
    assert speed["paired_ratio_median"] >= 1.15


if __name__ == "__main__":
    speed = run_speed()
    exact = run_exactness()
    sweep = run_bits_sweep()
    _print(speed, exact, sweep)
    assert speed["min_ratio"] >= 1.3 or speed["paired_ratio_median"] >= 1.3, (
        f"quantized speedup below acceptance: min-ratio "
        f"{speed['min_ratio']:.3f}, paired median "
        f"{speed['paired_ratio_median']:.3f}"
    )
    payload = {
        "bench": "quant_engine",
        "input_hw": list(CONTEST_HW),
        "batch": 1,
        "scheme": "w8/f8",
        "speed": speed,
        "exactness_max_abs_diff": exact,
        "bits_sweep": sweep,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_quant.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
