"""Ablation — Stage-1 Bundle evaluation across the whole catalog.

Reproduces the flow's first stage at bench scale: every candidate Bundle
is fast-trained inside the fixed DNN sketch and costed on the Ultra96
latency model; the Pareto frontier is what Stage 2 would search over.
The expected shape: the dw3-pw Bundle (the one SkyNet is built from)
sits on the accuracy/latency frontier.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from common import print_table

from repro.core import BUNDLE_CATALOG, BottomUpFlow, FlowConfig, PSOConfig
from repro.datasets import make_dacsdc_splits


@lru_cache(maxsize=None)
def run_stage1():
    train, val = make_dacsdc_splits(128, 32, image_hw=(32, 64), seed=17)
    flow = BottomUpFlow(
        train,
        val,
        config=FlowConfig(
            sketch_channels=(8, 16, 24, 32),
            sketch_epochs=3,
            pso=PSOConfig(),
        ),
        catalog=BUNDLE_CATALOG,
    )
    return flow.stage1_select_bundles(np.random.default_rng(0))


def test_bundle_pareto_frontier(benchmark):
    evals = benchmark.pedantic(run_stage1, rounds=1, iterations=1)
    rows = [
        [e.spec.name, f"{e.accuracy:.3f}", f"{e.latency_ms:.2f}",
         "yes" if e.on_frontier else "no"]
        for e in sorted(evals, key=lambda e: e.latency_ms)
    ]
    print_table(
        "Stage 1 — Bundle catalog: sketch accuracy vs Ultra96 latency",
        ["bundle", "sketch IoU", "latency (ms)", "Pareto frontier"],
        rows,
    )
    by_name = {e.spec.name: e for e in evals}
    frontier = [e for e in evals if e.on_frontier]
    assert 1 <= len(frontier) <= len(evals)
    # depthwise-separable bundles are the cheap end of the catalog
    assert by_name["dw3-pw"].latency_ms < by_name["conv3-conv3"].latency_ms
    # SkyNet's bundle earns a frontier spot OR is within noise of one
    dw = by_name["dw3-pw"]
    if not dw.on_frontier:
        dominating = [
            e for e in frontier
            if e.accuracy >= dw.accuracy and e.latency_ms <= dw.latency_ms
        ]
        # whoever beats it must do so only marginally on accuracy
        assert all(e.accuracy - dw.accuracy < 0.12 for e in dominating)


if __name__ == "__main__":
    for e in run_stage1():
        print(e.spec.name, e.accuracy, e.latency_ms, e.on_frontier)
