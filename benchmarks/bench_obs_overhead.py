"""Observability overhead — the disabled recorder must be (near) free.

The `repro.obs` helpers are called unconditionally from every hot loop
(`DetectionTrainer.fit`, PSO, the pipeline simulator, and — since the
telemetry layer — every `InferenceServer.submit`/batch).  This bench
verifies the no-op fast path costs <1% of a real training run and <2%
of the served request path:

1. micro-time the disabled helpers (`span` / `inc` / `observe`) and the
   per-request context mint (`RequestContext.new`),
2. count how many helper calls one `fit` actually makes (by running
   once with a recorder enabled),
3. bound the disabled-path overhead as calls x per-call cost and
   compare against the measured fit wall time,
4. push the same request load through the dynamic-batching server with
   telemetry off and on, bounding the disabled serve path analytically
   (per-request fixed cost / measured per-request service time) and
   reporting the *enabled* recorder's measured throughput cost.

Run as a script to (re)write ``BENCH_obs.json`` at the repo root.
"""

from __future__ import annotations

import time
import timeit

import numpy as np
from common import WIDTH, build_detector, detection_data, print_table

from repro import obs
from repro.core import SkyNetBackbone
from repro.detection import DetectionTrainer, TrainConfig
from repro.runtime import ServeConfig, Session

EPOCHS = 4
SERVE_REQUESTS = 192
SERVE_REPS = 3


def _fit_once() -> float:
    """Train a small detector; returns wall seconds."""
    train, val = detection_data()
    det = build_detector(
        SkyNetBackbone("A", width_mult=WIDTH, rng=np.random.default_rng(0))
    )
    trainer = DetectionTrainer(
        det, TrainConfig(epochs=EPOCHS, batch_size=16, augment=False)
    )
    t0 = time.perf_counter()
    trainer.fit(train, val, rng=np.random.default_rng(0))
    return time.perf_counter() - t0


def measure_overhead() -> dict:
    obs.disable()

    # 1. per-call cost of the disabled helpers
    n = 100_000
    span_ns = timeit.timeit(
        "s = span('x', k=1); s.__enter__(); s.__exit__()",
        globals={"span": obs.span}, number=n,
    ) / n * 1e9
    metric_ns = timeit.timeit(
        "inc('c'); observe('h', 1.0)",
        globals={"inc": obs.inc, "observe": obs.observe}, number=n,
    ) / n * 1e9

    # 2. helper-call count of one fit (spans enter+exit, metric writes)
    with obs.recording() as rec:
        enabled_s = _fit_once()
    n_spans = len(rec.tracer.spans)
    n_metric_writes = int(
        rec.metrics.counter("train/batches").value  # one inc per batch
        + rec.metrics.histogram("train/loss").count
        + rec.metrics.gauge("train/imgs_per_sec").updates
        + rec.metrics.gauge("train/val_iou").updates
    )

    # 3. disabled-path bound vs measured fit time
    disabled_s = _fit_once()
    overhead_s = (n_spans * span_ns + n_metric_writes * metric_ns) / 1e9
    return {
        "span_ns": span_ns,
        "metric_ns": metric_ns,
        "n_spans": n_spans,
        "n_metric_writes": int(n_metric_writes),
        "fit_disabled_s": disabled_s,
        "fit_enabled_s": enabled_s,
        "overhead_s": overhead_s,
        "overhead_pct": 100.0 * overhead_s / disabled_s,
    }


def _serve_load(session, images, n_requests: int) -> float:
    """Requests/second for ``n_requests`` through the running server."""
    t0 = time.perf_counter()
    futures = [session.submit(images[i % len(images)])
               for i in range(n_requests)]
    for f in futures:
        f.result(timeout=60.0)
    return n_requests / (time.perf_counter() - t0)


def measure_serve_overhead() -> dict:
    """Telemetry cost on the served request path, off and on.

    The *disabled* bound is analytic — per-request fixed cost (context
    mint + the handful of no-op helper calls submit/batch make) over the
    measured per-request service time — because a throughput A/B at
    this scale is dominated by scheduler noise.  The *enabled* cost is
    the measured throughput ratio, best-of-reps both arms.
    """
    from repro.obs.context import RequestContext

    obs.disable()

    n = 100_000
    ctx_ns = timeit.timeit(
        "RequestContext.new('bench')",
        globals={"RequestContext": RequestContext}, number=n,
    ) / n * 1e9
    helper_ns = timeit.timeit(
        "inc('c'); set_gauge('g', 1.0); observe('h', 1.0)",
        globals={"inc": obs.inc, "set_gauge": obs.set_gauge,
                 "observe": obs.observe}, number=n,
    ) / n * 1e9

    det = build_detector(
        SkyNetBackbone("A", width_mult=WIDTH, rng=np.random.default_rng(0))
    )
    images = [img[None] for img in detection_data()[0].images[:8]]

    def run_arm(recording: bool) -> float:
        session = Session.load(det, serve=ServeConfig(
            num_workers=1, max_batch_size=8, max_wait_ms=1.0,
        ))
        try:
            _serve_load(session, images, 16)  # warm worker clone + arena
            best = 0.0
            for _ in range(SERVE_REPS):
                if recording:
                    with obs.recording():
                        best = max(best,
                                   _serve_load(session, images,
                                               SERVE_REQUESTS))
                else:
                    best = max(best,
                               _serve_load(session, images, SERVE_REQUESTS))
            return best
        finally:
            session.close()

    rps_disabled = run_arm(recording=False)
    rps_enabled = run_arm(recording=True)

    # ~4 no-op helper calls per request on the submit+batch path.
    per_request_fixed_ns = ctx_ns + 4 * helper_ns
    service_ns = 1e9 / rps_disabled
    return {
        "ctx_ns": ctx_ns,
        "helper_ns": helper_ns,
        "rps_disabled": rps_disabled,
        "rps_enabled": rps_enabled,
        "enabled_overhead_pct":
            100.0 * (1.0 - rps_enabled / rps_disabled),
        "disabled_bound_pct": 100.0 * per_request_fixed_ns / service_ns,
    }


def test_disabled_serve_path_under_two_percent(benchmark):
    stats = benchmark.pedantic(measure_serve_overhead, rounds=1,
                               iterations=1)
    print_table(
        "obs overhead on the serve path "
        f"({SERVE_REQUESTS} requests, best of {SERVE_REPS})",
        ["quantity", "value"],
        [
            ["RequestContext.new", f"{stats['ctx_ns']:.0f} ns"],
            ["disabled helper trio", f"{stats['helper_ns']:.0f} ns"],
            ["serve rps (telemetry off)", f"{stats['rps_disabled']:.1f}"],
            ["serve rps (telemetry on)", f"{stats['rps_enabled']:.1f}"],
            ["disabled-path bound", f"{stats['disabled_bound_pct']:.4f} %"],
            ["enabled measured cost",
             f"{stats['enabled_overhead_pct']:.2f} %"],
        ],
    )
    assert stats["disabled_bound_pct"] < 2.0


def test_disabled_recorder_under_one_percent(benchmark):
    stats = benchmark.pedantic(measure_overhead, rounds=1, iterations=1)
    print_table(
        "obs overhead on DetectionTrainer.fit "
        f"({EPOCHS} epochs, width {WIDTH})",
        ["quantity", "value"],
        [
            ["disabled span enter+exit", f"{stats['span_ns']:.0f} ns"],
            ["disabled metric write", f"{stats['metric_ns']:.0f} ns"],
            ["helper calls per fit",
             stats["n_spans"] + stats["n_metric_writes"]],
            ["fit wall time (disabled)", f"{stats['fit_disabled_s']:.2f} s"],
            ["fit wall time (enabled)", f"{stats['fit_enabled_s']:.2f} s"],
            ["disabled-path overhead", f"{stats['overhead_pct']:.4f} %"],
        ],
    )
    assert stats["overhead_pct"] < 1.0


if __name__ == "__main__":
    import json
    from pathlib import Path

    fit_stats = measure_overhead()
    serve_stats = measure_serve_overhead()
    for k, v in {**fit_stats, **serve_stats}.items():
        print(f"{k}: {v}")
    payload = {
        "bench": "obs_overhead",
        "model": "SkyNet-A",
        "width_mult": WIDTH,
        "epochs": EPOCHS,
        "serve_requests": SERVE_REQUESTS,
        "serve_reps": SERVE_REPS,
        "methodology": (
            "Disabled-path overheads are analytic bounds: measured "
            "per-call no-op helper cost x call count, over measured "
            "wall time (a throughput A/B at this scale is scheduler "
            "noise).  The enabled serve cost is the measured "
            "throughput ratio, best-of-reps per arm on the same "
            "session.  Thresholds: <1% training, <2% serve disabled "
            "path."
        ),
        "fit": fit_stats,
        "serve": serve_stats,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
