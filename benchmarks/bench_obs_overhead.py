"""Observability overhead — the disabled recorder must be (near) free.

The `repro.obs` helpers are called unconditionally from every hot loop
(`DetectionTrainer.fit`, PSO, the pipeline simulator).  This bench
verifies the no-op fast path costs <1% of a real training run:

1. micro-time the disabled helpers (`span` / `inc` / `observe`),
2. count how many helper calls one `fit` actually makes (by running
   once with a recorder enabled),
3. bound the disabled-path overhead as calls x per-call cost and
   compare against the measured fit wall time.

It also reports the enabled-recorder wall time for context.
"""

from __future__ import annotations

import time
import timeit

import numpy as np
from common import WIDTH, build_detector, detection_data, print_table

from repro import obs
from repro.core import SkyNetBackbone
from repro.detection import DetectionTrainer, TrainConfig

EPOCHS = 4


def _fit_once() -> float:
    """Train a small detector; returns wall seconds."""
    train, val = detection_data()
    det = build_detector(
        SkyNetBackbone("A", width_mult=WIDTH, rng=np.random.default_rng(0))
    )
    trainer = DetectionTrainer(
        det, TrainConfig(epochs=EPOCHS, batch_size=16, augment=False)
    )
    t0 = time.perf_counter()
    trainer.fit(train, val, rng=np.random.default_rng(0))
    return time.perf_counter() - t0


def measure_overhead() -> dict:
    obs.disable()

    # 1. per-call cost of the disabled helpers
    n = 100_000
    span_ns = timeit.timeit(
        "s = span('x', k=1); s.__enter__(); s.__exit__()",
        globals={"span": obs.span}, number=n,
    ) / n * 1e9
    metric_ns = timeit.timeit(
        "inc('c'); observe('h', 1.0)",
        globals={"inc": obs.inc, "observe": obs.observe}, number=n,
    ) / n * 1e9

    # 2. helper-call count of one fit (spans enter+exit, metric writes)
    with obs.recording() as rec:
        enabled_s = _fit_once()
    n_spans = len(rec.tracer.spans)
    n_metric_writes = int(
        rec.metrics.counter("train/batches").value  # one inc per batch
        + rec.metrics.histogram("train/loss").count
        + rec.metrics.gauge("train/imgs_per_sec").updates
        + rec.metrics.gauge("train/val_iou").updates
    )

    # 3. disabled-path bound vs measured fit time
    disabled_s = _fit_once()
    overhead_s = (n_spans * span_ns + n_metric_writes * metric_ns) / 1e9
    return {
        "span_ns": span_ns,
        "metric_ns": metric_ns,
        "n_spans": n_spans,
        "n_metric_writes": int(n_metric_writes),
        "fit_disabled_s": disabled_s,
        "fit_enabled_s": enabled_s,
        "overhead_s": overhead_s,
        "overhead_pct": 100.0 * overhead_s / disabled_s,
    }


def test_disabled_recorder_under_one_percent(benchmark):
    stats = benchmark.pedantic(measure_overhead, rounds=1, iterations=1)
    print_table(
        "obs overhead on DetectionTrainer.fit "
        f"({EPOCHS} epochs, width {WIDTH})",
        ["quantity", "value"],
        [
            ["disabled span enter+exit", f"{stats['span_ns']:.0f} ns"],
            ["disabled metric write", f"{stats['metric_ns']:.0f} ns"],
            ["helper calls per fit",
             stats["n_spans"] + stats["n_metric_writes"]],
            ["fit wall time (disabled)", f"{stats['fit_disabled_s']:.2f} s"],
            ["fit wall time (enabled)", f"{stats['fit_enabled_s']:.2f} s"],
            ["disabled-path overhead", f"{stats['overhead_pct']:.4f} %"],
        ],
    )
    assert stats["overhead_pct"] < 1.0


if __name__ == "__main__":
    stats = measure_overhead()
    for k, v in stats.items():
        print(f"{k}: {v}")
