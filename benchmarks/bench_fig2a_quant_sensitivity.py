"""Figure 2(a) — AlexNet accuracy under parameter vs feature-map quantization.

The paper's motivational study: compressing AlexNet's *parameters* from
float32 to mixed fixed point shrinks the model 22x (237.9 MB → 10.8 MB)
with little accuracy change, while *feature-map* precision is the
sensitive direction (16x: 15.7 MB → 0.98 MB before accuracy collapses).

We train a width-scaled AlexNet classifier on a synthetic 12-category
task and sweep the two compression axes independently, reporting
accuracy and data size per point — the two bubble series of Fig. 2(a).
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

import numpy as np
import pytest
from common import print_table

from repro.datasets.renderer import NUM_MAIN_CATEGORIES, SceneRenderer
from repro.hardware.profiler import profile_network
from repro.hardware.quantization import (
    feature_map_quantization,
    fm_megabytes,
    param_megabytes,
    weight_quantization,
)
from repro.nn import Tensor, no_grad
from repro.nn.functional import cross_entropy
from repro.nn.optim import Adam
from repro.zoo import AlexNetClassifier

IMAGE = 64
N_TRAIN, N_VAL = 480, 120
EPOCHS = 6
# parameter schemes in the paper's p1-p2p3p4p5 spirit: (conv1, convs,
# fc1-2, fc3) weight bits; None = float32
PARAM_SCHEMES = {
    "float32": None,
    "W(10,8,8,10)": {"conv1": 10, "conv": 8, "fc12": 8, "fc3": 10},
    "W(8,6,6,8)": {"conv1": 8, "conv": 6, "fc12": 6, "fc3": 8},
    "W(8,6,4,8)": {"conv1": 8, "conv": 6, "fc12": 4, "fc3": 8},
}
FM_BITS = (None, 12, 10, 8, 6, 4)


def make_classification_data(n: int, seed: int):
    """Rendered scenes with enlarged objects; label = main category."""
    rng = np.random.default_rng(seed)
    renderer = SceneRenderer(image_hw=(IMAGE, IMAGE), clutter=0)
    images = np.empty((n, 3, IMAGE, IMAGE), dtype=np.float32)
    labels = np.empty(n, dtype=np.int64)
    for i in range(n):
        spec = renderer.sample_object(rng)
        spec = replace(
            spec,
            w=float(rng.uniform(0.35, 0.6)),
            h=float(rng.uniform(0.35, 0.6)),
            cx=0.5,
            cy=0.5,
        )
        images[i], _ = renderer.render(spec, rng)
        labels[i] = spec.category
    return images, labels


@lru_cache(maxsize=None)
def trained_classifier():
    xtr, ytr = make_classification_data(N_TRAIN, seed=0)
    xva, yva = make_classification_data(N_VAL, seed=1)
    model = AlexNetClassifier(
        num_classes=NUM_MAIN_CATEGORIES, width_mult=0.25,
        input_hw=(IMAGE, IMAGE), dropout=0.0,  # tiny budget: no dropout
        rng=np.random.default_rng(0),
    )
    opt = Adam(model.parameters(), lr=1e-3)
    rng = np.random.default_rng(0)
    model.train()
    for _ in range(EPOCHS):
        order = rng.permutation(N_TRAIN)
        for s in range(0, N_TRAIN, 32):
            idx = order[s : s + 32]
            logits = model(Tensor(xtr[idx]))
            loss = cross_entropy(logits, ytr[idx])
            model.zero_grad()
            loss.backward()
            opt.step()
    model.eval()
    return model, xva, yva


def accuracy(model, x, y) -> float:
    with no_grad():
        logits = model(Tensor(x)).data
    return float((logits.argmax(axis=1) == y).mean())


def _param_policy(scheme: dict):
    def policy(name: str):
        if name.startswith("features.conv1"):
            return scheme["conv1"]
        if name.startswith("features."):
            return scheme["conv"]
        if name.startswith(("fc1", "fc2")):
            return scheme["fc12"]
        return scheme["fc3"]

    return policy


@lru_cache(maxsize=None)
def run_study():
    model, xva, yva = trained_classifier()
    profile = profile_network(model.layer_descriptors())
    base_acc = accuracy(model, xva, yva)

    param_rows = []
    for label, scheme in PARAM_SCHEMES.items():
        if scheme is None:
            acc, bits = base_acc, 32.0
        else:
            with weight_quantization(model, bits_for=_param_policy(scheme)):
                acc = accuracy(model, xva, yva)
            # effective average bits, parameter-weighted (FC dominates)
            total, weighted = 0, 0.0
            for name, p in model.named_parameters():
                total += p.size
                weighted += p.size * _param_policy(scheme)(name)
            bits = weighted / total
        param_rows.append(
            (label, acc, param_megabytes(profile.params, bits))
        )

    fm_rows = []
    for bits in FM_BITS:
        if bits is None:
            acc, mb = base_acc, fm_megabytes(profile.fm_elems, 32)
        else:
            with feature_map_quantization(bits):
                acc = accuracy(model, xva, yva)
            mb = fm_megabytes(profile.fm_elems, bits)
        fm_rows.append((f"FM{bits or 32}", acc, mb))
    return base_acc, param_rows, fm_rows


def test_fig2a_quantization_sensitivity(benchmark):
    base_acc, param_rows, fm_rows = benchmark.pedantic(
        run_study, rounds=1, iterations=1
    )
    print_table(
        "Fig. 2(a) — parameter compression (blue series)",
        ["scheme", "accuracy", "param MB"],
        [[l, f"{a:.3f}", f"{m:.2f}"] for l, a, m in param_rows],
    )
    print_table(
        "Fig. 2(a) — feature-map compression (green series)",
        ["scheme", "accuracy", "FM MB"],
        [[l, f"{a:.3f}", f"{m:.3f}"] for l, a, m in fm_rows],
    )
    assert base_acc > 0.5  # the classifier genuinely learned

    # parameter compression is benign: even the aggressive mixed scheme
    # stays near float accuracy while shrinking the model >4x
    aggressive = param_rows[-1]
    assert aggressive[1] >= base_acc - 0.10
    assert param_rows[0][2] / aggressive[2] > 4.0

    # feature maps are the sensitive direction: the harshest FM scheme
    # loses at least as much accuracy as the harshest parameter scheme
    fm_worst = min(a for _, a, _ in fm_rows)
    param_worst = min(a for _, a, _ in param_rows)
    assert fm_worst <= param_worst + 0.02


if __name__ == "__main__":
    print(run_study())
