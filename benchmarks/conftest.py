"""Benchmark-suite conftest (keeps the directory importable for common.py)."""
