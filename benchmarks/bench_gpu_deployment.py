"""GPU deployment options — fp32 vs kernel fusion vs fp16+TensorRT.

Table 1 lists half-precision + TensorRT (optimization 4) among the
GPU-track winners' tools; the paper's own TX2 entry stays in fp32 for
accuracy and wins through system-level pipelining instead (Section 6.3).
This bench quantifies the menu on SkyNet: what TensorRT-style fusion and
fp16 would have bought, supporting the paper's observation that cuDNN
"leaves little space for handcrafted improvement" while compilation and
precision do.
"""

from __future__ import annotations

import pytest
from common import contest_descriptor, print_table

from repro.core import SkyNetBackbone
from repro.hardware.gpu import GpuLatencyModel, TrtDeployment
from repro.hardware.spec import TX2


def run_options():
    net = contest_descriptor(SkyNetBackbone("C"))
    base = GpuLatencyModel(TX2, batch=4)
    options = {
        "fp32 (paper's choice)": base.per_frame_latency_ms(net),
        "fp32 + fusion": TrtDeployment(TX2, fp16=False, fused=True)
        .latency_model(4).per_frame_latency_ms(net),
        "fp16 + fusion (TensorRT)": TrtDeployment(TX2, fp16=True, fused=True)
        .latency_model(4).per_frame_latency_ms(net),
    }
    return options


def test_gpu_deployment_options(benchmark):
    options = benchmark.pedantic(run_options, rounds=1, iterations=1)
    fp32 = options["fp32 (paper's choice)"]
    rows = [
        [name, f"{ms:.2f}", f"{1e3 / ms:.1f}", f"{fp32 / ms:.2f}x"]
        for name, ms in options.items()
    ]
    print_table(
        "TX2 deployment options for SkyNet (batch 4)",
        ["deployment", "ms/frame", "FPS", "speedup"],
        rows,
    )
    # each optimization strictly helps
    assert options["fp32 + fusion"] < fp32
    assert options["fp16 + fusion (TensorRT)"] < options["fp32 + fusion"]
    # but even full TensorRT is < 3x — consistent with the paper winning
    # via accuracy + pipelining rather than raw engine tuning
    assert fp32 / options["fp16 + fusion (TensorRT)"] < 3.0


if __name__ == "__main__":
    for k, v in run_options().items():
        print(f"{k:28s} {v:.2f} ms")
