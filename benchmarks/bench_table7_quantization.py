"""Table 7 — validation accuracy under the FPGA quantization schemes.

Applies the paper's five (feature-map, weight) fixed-point schemes to
the trained SkyNet and reports validation IoU per scheme.  The paper's
shape: float32 is best, scheme 1 (FM9/W11) loses only ~1.4 points, and
accuracy degrades monotonically toward scheme 4 (FM8/W10); accuracy
outweighing speed in Eq. (5) is why the paper deploys scheme 1.
"""

from __future__ import annotations

from common import detection_data, print_table, trained_skynet

from repro.detection.metrics import evaluate_detector
from repro.hardware.quantization import TABLE7_SCHEMES, quantized_inference

PAPER_IOUS = (0.741, 0.727, 0.714, 0.690, 0.680)


def run_schemes():
    det, _ = trained_skynet()
    _, val = detection_data()
    results = []
    for scheme in TABLE7_SCHEMES:
        with quantized_inference(det, scheme.w_bits, scheme.fm_bits):
            iou = evaluate_detector(det, val.images, val.boxes)
        results.append((scheme, iou))
    return results


def test_table7_quantization_schemes(benchmark):
    results = benchmark.pedantic(run_schemes, rounds=1, iterations=1)
    rows = []
    for (scheme, iou), paper in zip(results, PAPER_IOUS):
        fm, w = scheme.label
        rows.append([scheme.index, fm, w, f"{iou:.3f}", f"{paper:.3f}"])
    print_table(
        "Table 7 — accuracy vs quantization scheme",
        ["scheme", "FM", "Weights", "IoU (repro)", "IoU (paper)"],
        rows,
    )
    ious = {s.index: iou for s, iou in results}
    # float32 >= the best fixed-point scheme (small tolerance for the
    # tiny-model noise floor)
    assert ious[0] >= ious[4] - 0.02
    # scheme 1 stays close to float (the paper's deployment argument)
    assert ious[1] >= ious[0] - 0.08
    # the aggressive schemes are no better than the conservative one
    assert ious[4] <= ious[1] + 0.03


if __name__ == "__main__":
    for scheme, iou in run_schemes():
        print(scheme, f"IoU {iou:.3f}")
