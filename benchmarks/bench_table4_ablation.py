"""Table 4 — SkyNet configuration ablation: A/B/C x ReLU/ReLU6.

The paper trains the six combinations end to end and finds accuracy
rising with the bypass (A < B < C) and with ReLU6, crowning
SkyNet C + ReLU6 at 0.741.

At our laptop budget the all-object IoU differences sit near the
tiny-model noise floor, but the *mechanism* the paper credits — "the
bypass helps to keep small object features in the later part of the
DNN" (Section 5.2) — shows clearly on the small-object subset of the
validation split, which is what the assertions check.  The ReLU/ReLU6
gap is reported as measured.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest
from common import WIDTH, build_detector, detection_data, print_table, train_detector

from repro.core import SkyNetBackbone
from repro.detection import Detector
from repro.detection.metrics import iou_per_image

CONFIGS = [("A", "relu"), ("A", "relu6"), ("B", "relu"), ("B", "relu6"),
           ("C", "relu"), ("C", "relu6")]
PAPER = {
    ("A", "relu"): (1.27, 0.653),
    ("A", "relu6"): (1.27, 0.673),
    ("B", "relu"): (1.57, 0.685),
    ("B", "relu6"): (1.57, 0.703),
    ("C", "relu"): (1.82, 0.713),
    ("C", "relu6"): (1.82, 0.741),
}
EPOCHS = 12
SMALL_AREA = 0.02


@lru_cache(maxsize=None)
def run_ablation():
    _, val = detection_data()
    areas = val.boxes[:, 2] * val.boxes[:, 3]
    small = areas < SMALL_AREA
    results = {}
    for cfg, act in CONFIGS:
        bb = SkyNetBackbone(cfg, activation=act, width_mult=WIDTH,
                            rng=np.random.default_rng(0))
        det = build_detector(bb, seed=0)
        train_detector(det, epochs=EPOCHS, seed=0)
        ious = iou_per_image(det.predict(val.images), val.boxes)
        size_mb = Detector(
            SkyNetBackbone(cfg, activation=act)
        ).num_parameters() * 4 / 1e6
        results[(cfg, act)] = (
            size_mb, float(ious.mean()), float(ious[small].mean())
        )
    return results


def test_table4_skynet_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for key in CONFIGS:
        mb, iou, small_iou = results[key]
        p_mb, p_iou = PAPER[key]
        rows.append(
            [f"SkyNet {key[0]} - {key[1].upper()}", f"{mb:.2f} MB",
             f"{iou:.3f}", f"{small_iou:.3f}", f"{p_mb:.2f} MB",
             f"{p_iou:.3f}"]
        )
    print_table(
        "Table 4 — SkyNet validation accuracy ablation",
        ["model", "size (repro)", "IoU (repro)", "IoU small-obj",
         "size (paper)", "IoU (paper)"],
        rows,
    )
    sizes = {k: v[0] for k, v in results.items()}
    ious = {k: v[1] for k, v in results.items()}
    small = {k: v[2] for k, v in results.items()}
    # model sizes match the paper column at full width
    for key in CONFIGS:
        assert sizes[key] == pytest.approx(PAPER[key][0], rel=0.04)
    # the bypass mechanism: best bypass config beats best plain config
    # on the small-object subset (the paper's stated reason for Stage 3)
    best_small = lambda cfg: max(small[(cfg, "relu")], small[(cfg, "relu6")])
    assert max(best_small("B"), best_small("C")) > best_small("A")
    # the paper's winning configuration is competitive overall
    assert ious[("C", "relu6")] >= max(ious.values()) - 0.08


if __name__ == "__main__":
    for key, (mb, iou, s) in run_ablation().items():
        print(key, f"{mb:.2f} MB IoU {iou:.3f} (small {s:.3f})")
