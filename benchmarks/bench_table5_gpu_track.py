"""Table 5 — DAC-SDC GPU-track final results (TX2, hidden test set).

Two reproductions are printed:

1. **Scoring recomputation** — Eqs. (2)-(5) applied to the published
   IoU/FPS/power columns with the field-average energy recovered from
   the published rows: reproduces every total score to ~3 decimals.
2. **Our modeled SkyNet row** — throughput from the TX2 latency model +
   system schedule, power from the utilization model, accuracy measured
   on the synthetic held-out split (absolute IoU is not comparable to
   the real DAC-SDC IoU — the dataset is a synthetic stand-in; the FPS
   and power columns are the modeled reproduction).
"""

from __future__ import annotations

import pytest
from common import contest_descriptor, print_table, trained_skynet

from repro.contest import (
    GPU_2018,
    GPU_2019,
    GPU_TRACK,
    evaluate_submission,
    score_entries,
)
from repro.contest.scoring import implied_field_energy
from repro.hardware.spec import TX2


def recompute_field():
    field = list(GPU_2019)
    e_bar = implied_field_energy(field, GPU_TRACK)
    return score_entries([e.as_dict() for e in field], GPU_TRACK,
                         field_energy=e_bar), field


def our_submission():
    det, iou = trained_skynet()
    desc = contest_descriptor(det.backbone.__class__("C"))  # full-size net
    from common import detection_data

    _, val = detection_data()
    return evaluate_submission(det, val, desc, TX2, batch=4,
                               utilization=0.85)


def test_table5_scoring_recomputation(benchmark):
    scored, field = benchmark.pedantic(recompute_field, rounds=1,
                                       iterations=1)
    rows = [
        [s.name, f"{s.iou:.3f}", f"{s.fps:.2f}", f"{s.power_w:.2f}",
         f"{s.total_score:.3f}"]
        for s in scored
    ]
    print_table(
        "Table 5 (2019 rows, recomputed with Eqs. 2-5)",
        ["team", "IoU", "FPS", "Power(W)", "Total score"],
        rows,
    )
    published = {e.name: e.total_score for e in field}
    for s in scored:
        assert s.total_score == pytest.approx(published[s.name], abs=0.01)
    assert "SkyNet" in scored[0].name  # SkyNet wins the track


def test_table5_modeled_skynet_row(benchmark):
    sub = benchmark.pedantic(our_submission, rounds=1, iterations=1)
    rows = [
        ["SkyNet (paper)", "0.731", "67.33", "13.50"],
        ["SkyNet (repro, modeled)", f"{sub.iou:.3f}*", f"{sub.fps:.2f}",
         f"{sub.power_w:.2f}"],
    ]
    print_table(
        "Table 5 — our modeled SkyNet system row "
        "(*synthetic-data IoU, not comparable in absolute terms)",
        ["entry", "IoU", "FPS", "Power(W)"],
        rows,
    )
    # the hardware-side reproduction targets
    assert sub.fps == pytest.approx(67.33, rel=0.05)
    assert sub.power_w == pytest.approx(13.50, rel=0.08)
    assert sub.iou > 0.15  # the tiny trained model genuinely detects


if __name__ == "__main__":
    scored, _ = recompute_field()
    for s in scored:
        print(s)
    print(our_submission())
