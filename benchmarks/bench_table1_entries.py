"""Table 1 — DAC-SDC winning entries and their optimization taxonomy.

Regenerates the literature table the paper's motivation builds on: every
winner follows the top-down flow (reference DNN + software/hardware
optimizations).
"""

from __future__ import annotations

from common import print_table

from repro.contest import OPTIMIZATIONS, TAXONOMY


def build_table() -> list[list[str]]:
    rows = []
    for r in TAXONOMY:
        rows.append(
            [
                r.rank,
                r.team,
                r.track.upper(),
                r.reference_dnn,
                ", ".join(r.optimization_names()),
            ]
        )
    return rows


def test_table1_entries(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print_table(
        "Table 1 — DAC-SDC winning entries (reference DNNs + optimizations)",
        ["Rank", "Team", "Track", "Reference DNN", "Optimizations"],
        rows,
    )
    assert len(rows) == 10
    # the paper's observation: quantization is near-universal
    quantized = sum("data quantization" in r[4] for r in rows)
    assert quantized >= 7
    assert len(OPTIMIZATIONS) == 9


if __name__ == "__main__":
    print_table(
        "Table 1",
        ["Rank", "Team", "Track", "Reference DNN", "Optimizations"],
        build_table(),
    )
