"""Tiled high-resolution inference vs naive downscaling (Fig. 6 regime).

The paper's Fig. 6 puts 91% of DAC-SDC ground-truth boxes under 9% of
the frame.  This bench renders multi-object scenes whose objects are far
*smaller* than the detector's training distribution relative to the full
frame — the regime where downscaling a large frame to the detector input
erases the objects — and compares two ways of running the same trained
miniature SkyNet:

* **downscale** — bilinear-resize the frame to the detector's native
  input and run one whole-frame multi-detection decode;
* **tiled** — split the frame into an overlapping tile grid at native
  resolution, run *all tiles as one engine batch*, remap per-tile
  detections to global coordinates and merge with a global cross-tile
  NMS (:mod:`repro.detection.tiling`).

Accuracy is oracle-matched mean IoU (each ground-truth object scored by
its best-overlapping prediction, the multi-object analogue of the
DAC-SDC R_IoU) plus recall@0.5.  Latency is reported per frame for both
arms, and the tile fan-out itself is measured batched-vs-serial to show
the PR 7 batched GEMM path carrying real fan-out; a recorded trace
verifies the tile batch reaches the engine as ONE forward call with
batch == rows*cols.

Run as a script to (re)write ``BENCH_tiling.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_tiled_inference.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
from common import IMAGE_HW, print_table, trained_skynet

from repro import obs
from repro.datasets import resize_bilinear
from repro.datasets.renderer import SceneRenderer
from repro.detection.boxes import cxcywh_to_xyxy, box_iou
from repro.detection.tiling import FrameTiler
from repro.runtime import Session, SessionConfig

TILE_GRID = (2, 2)
OVERLAP = 0.25
#: Full frames are the tile grid times the detector's native input, so
#: each tile lands at the resolution the detector was trained at.
FRAME_HW = (IMAGE_HW[0] * TILE_GRID[0], IMAGE_HW[1] * TILE_GRID[1])
SCENES = 48
OBJECTS_PER_SCENE = 3
#: Object areas as a fraction of the *full frame* — around the Fig. 6
#: median (31% of DAC-SDC boxes are under 1% area) and tiny enough that
#: a naive downscale leaves only a few pixels per object.
AREA_RANGE = (0.0015, 0.006)
MAX_DET = 8


def make_scenes(seed: int = 7):
    """Small-object multi-object scenes + per-scene (M, 4) GT boxes."""
    renderer = SceneRenderer(image_hw=FRAME_HW, clutter=4)
    rng = np.random.default_rng(seed)
    frames, gts = [], []
    for _ in range(SCENES):
        img, specs = renderer.render_multi(
            OBJECTS_PER_SCENE, rng, area_range=AREA_RANGE
        )
        frames.append(img)
        gts.append(np.stack([s.box for s in specs]))
    return np.stack(frames), gts


def oracle_match(packed: np.ndarray, gt: np.ndarray) -> np.ndarray:
    """Best-prediction IoU per ground-truth object (0 when undetected)."""
    valid = packed[packed[:, 4] >= 0.0]
    if len(valid) == 0:
        return np.zeros(len(gt))
    pred_xyxy = cxcywh_to_xyxy(valid[:, :4])
    gt_xyxy = cxcywh_to_xyxy(gt)
    ious = box_iou(gt_xyxy[:, None, :], pred_xyxy[None, :, :])
    return ious.max(axis=1)


def run_accuracy(det, frames: np.ndarray, gts: list) -> dict:
    """Oracle-matched mean IoU + recall@0.5 for both arms."""
    tiled = Session.load(det, SessionConfig(
        tiles=TILE_GRID, tile_overlap=OVERLAP, tile_max_detections=MAX_DET,
    ))
    # The downscale arm uses the identical decode/NMS path via a 1x1
    # "grid" — only the front-end differs, so the comparison isolates
    # resolution, not post-processing.
    down = Session.load(det, SessionConfig(
        tiles=(1, 1), tile_max_detections=MAX_DET,
    ))
    small = resize_bilinear(frames, IMAGE_HW)

    out = {}
    for arm, session, inputs in (("tiled", tiled, frames),
                                 ("downscale", down, small)):
        t0 = time.perf_counter()
        packed = session.run(inputs)
        wall_ms = (time.perf_counter() - t0) * 1e3
        matched = np.concatenate(
            [oracle_match(packed[i], gts[i]) for i in range(len(gts))]
        )
        out[arm] = {
            "mean_iou": float(matched.mean()),
            "recall_50": float((matched >= 0.5).mean()),
            "ms_per_frame": wall_ms / len(frames),
        }
        session.close()
    out["iou_ratio"] = out["tiled"]["mean_iou"] / max(
        out["downscale"]["mean_iou"], 1e-9
    )
    return out


def run_latency(det, frames: np.ndarray, reps: int = 5) -> dict:
    """Per-frame tile fan-out: one batched engine call vs serial tiles."""
    from repro.nn.engine import compile_net

    net = compile_net(det)
    tiler = FrameTiler(det.anchors, *TILE_GRID, overlap=OVERLAP)
    tiles, plan = tiler.split(frames[:1])

    net(tiles)  # warm the arena at both shapes
    net(tiles[:1])

    def best(fn) -> float:
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times) * 1e3

    batched_ms = best(lambda: net(tiles))
    serial_ms = best(lambda: [net(tiles[i:i + 1])
                              for i in range(len(tiles))])
    return {
        "tiles": plan.num_tiles,
        "tile_hw": list(plan.tile_hw),
        "batched_ms": batched_ms,
        "serial_tiles_ms": serial_ms,
        "batch_speedup": serial_ms / batched_ms,
    }


def verify_engine_batch(det, frames: np.ndarray) -> dict:
    """Prove the tile fan-out reaches the engine as ONE batched call."""
    session = Session.load(det, SessionConfig(
        tiles=TILE_GRID, tile_overlap=OVERLAP, tile_max_detections=MAX_DET,
    ))
    expected = TILE_GRID[0] * TILE_GRID[1]
    with obs.recording() as rec:
        session.run(frames[0])
    session.close()
    forwards = [r for r in rec.records()
                if r.get("type") == "span" and r["name"] == "engine/forward"]
    batches = [f["attrs"].get("batch") for f in forwards]
    return {
        "engine_forward_calls": len(forwards),
        "engine_batch": batches[0] if batches else None,
        "one_batched_call": batches == [expected],
    }


def _print(acc: dict, lat: dict, spans: dict) -> None:
    print_table(
        f"tiled {TILE_GRID[0]}x{TILE_GRID[1]} (overlap {OVERLAP:g}) vs "
        f"naive downscale — {SCENES} scenes x {OBJECTS_PER_SCENE} small "
        f"objects @ {FRAME_HW[0]}x{FRAME_HW[1]}",
        ["arm", "mean IoU", "recall@0.5", "ms/frame"],
        [
            [arm, f"{acc[arm]['mean_iou']:.3f}",
             f"{acc[arm]['recall_50']:.3f}",
             f"{acc[arm]['ms_per_frame']:.2f}"]
            for arm in ("tiled", "downscale")
        ] + [["ratio", f"{acc['iou_ratio']:.2f}x", "", ""]],
    )
    print_table(
        f"tile fan-out ({lat['tiles']} tiles of "
        f"{lat['tile_hw'][0]}x{lat['tile_hw'][1]})",
        ["arm", "ms"],
        [
            ["one batched call", f"{lat['batched_ms']:.2f}"],
            ["serial tiles", f"{lat['serial_tiles_ms']:.2f}"],
            ["speedup", f"{lat['batch_speedup']:.2f}x"],
        ],
    )
    print(f"engine saw the fan-out as {spans['engine_forward_calls']} "
          f"forward call(s) at batch {spans['engine_batch']} "
          f"(one_batched_call={spans['one_batched_call']})")


def test_tiled_beats_downscale(benchmark):
    det, _ = trained_skynet()
    frames, gts = make_scenes()
    acc = benchmark.pedantic(
        lambda: run_accuracy(det, frames, gts), rounds=1, iterations=1
    )
    spans = verify_engine_batch(det, frames)
    _print(acc, run_latency(det, frames, reps=2), spans)
    assert spans["one_batched_call"]
    assert acc["iou_ratio"] >= 1.0


if __name__ == "__main__":
    det, final_iou = trained_skynet()
    frames, gts = make_scenes()
    acc = run_accuracy(det, frames, gts)
    lat = run_latency(det, frames)
    spans = verify_engine_batch(det, frames)
    _print(acc, lat, spans)
    assert spans["one_batched_call"], (
        f"tile fan-out did not reach the engine as one batched call: "
        f"{spans}"
    )
    assert acc["iou_ratio"] >= 1.0, (
        f"tiled mean IoU {acc['tiled']['mean_iou']:.3f} did not beat "
        f"downscale {acc['downscale']['mean_iou']:.3f}"
    )
    payload = {
        "bench": "tiled_inference",
        "input_hw": list(IMAGE_HW),
        "frame_hw": list(FRAME_HW),
        "tile_grid": list(TILE_GRID),
        "overlap": OVERLAP,
        "scenes": SCENES,
        "objects_per_scene": OBJECTS_PER_SCENE,
        "area_range": list(AREA_RANGE),
        "trained_val_iou": float(final_iou),
        "host_cpus": os.cpu_count() or 1,
        "results": {
            "tiled": acc["tiled"],
            "downscale": acc["downscale"],
            "iou_ratio": acc["iou_ratio"],
            "latency": lat,
            "engine_spans": spans,
        },
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_tiling.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
