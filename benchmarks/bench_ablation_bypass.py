"""Ablation — does the bypass + reordering actually help small objects?

DESIGN.md calls out the Stage-3 bypass as the design choice motivated by
Fig. 6's small-object statistics (Section 5.2: "The bypass helps to keep
small object features in the later part of the DNN").  This bench trains
SkyNet A (no bypass) and SkyNet C (bypass) on the shared split and
compares mean IoU on the *small-object subset* of the validation set
versus the large-object subset — the bypass should pay off most where
the paper says it does.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from common import WIDTH, build_detector, detection_data, print_table, train_detector

from repro.core import SkyNetBackbone
from repro.detection.metrics import iou_per_image

SMALL_AREA = 0.02  # boxes below 2% of the image count as "small"
EPOCHS = 12


@lru_cache(maxsize=None)
def run_ablation():
    _, val = detection_data()
    areas = val.boxes[:, 2] * val.boxes[:, 3]
    small = areas < SMALL_AREA
    out = {}
    for cfg in ("A", "C"):
        bb = SkyNetBackbone(cfg, width_mult=WIDTH,
                            rng=np.random.default_rng(0))
        det = build_detector(bb, seed=0)
        train_detector(det, epochs=EPOCHS, seed=0)
        ious = iou_per_image(det.predict(val.images), val.boxes)
        out[cfg] = {
            "all": float(ious.mean()),
            "small": float(ious[small].mean()) if small.any() else 0.0,
            "large": float(ious[~small].mean()) if (~small).any() else 0.0,
            "n_small": int(small.sum()),
        }
    return out


def test_bypass_helps_small_objects(benchmark):
    res = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [f"SkyNet {cfg}", f"{r['all']:.3f}", f"{r['small']:.3f}",
         f"{r['large']:.3f}"]
        for cfg, r in res.items()
    ]
    print_table(
        f"Bypass ablation (small = area < {SMALL_AREA:.0%}, "
        f"n={res['A']['n_small']})",
        ["model", "IoU (all)", "IoU (small)", "IoU (large)"],
        rows,
    )
    # the bypass model wins overall at this budget
    assert res["C"]["all"] >= res["A"]["all"] - 0.02
    # and the win is present on the small-object subset (the paper's
    # stated mechanism)
    assert res["C"]["small"] >= res["A"]["small"] - 0.02


if __name__ == "__main__":
    print(run_ablation())
