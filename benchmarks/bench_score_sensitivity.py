"""Eq. (5) sensitivity — why SkyNet trades speed for accuracy.

Section 6.4.1: "Since accuracy has higher weight in the total score
calculation (Equation 5), we pick scheme 1" — and Table 6 shows SkyNet
winning the FPGA track while running *half* as fast as the runner-up.
This bench quantifies that design logic: starting from SkyNet's
published operating point, it sweeps hypothetical accuracy-for-speed
trades and shows the total score falls when IoU is sacrificed for FPS,
on both tracks.
"""

from __future__ import annotations

import numpy as np
import pytest
from common import print_table

from repro.contest import FPGA_2019, FPGA_TRACK, GPU_2019, GPU_TRACK
from repro.contest.scoring import implied_field_energy, score_entries


def sweep(track_name: str):
    field = list(GPU_2019) if track_name == "gpu" else list(FPGA_2019)
    track = GPU_TRACK if track_name == "gpu" else FPGA_TRACK
    e_bar = implied_field_energy(field, track)
    skynet = next(e for e in field if "SkyNet" in e.name)
    others = [e.as_dict() for e in field if "SkyNet" not in e.name]

    # trade d points of IoU for proportional FPS (a pruning/quantization
    # style trade: each IoU point buys ~8% more throughput)
    rows = []
    for d_iou in (0.0, 0.02, 0.05, 0.10, 0.15):
        variant = {
            "name": f"SkyNet(-{d_iou:.2f} IoU)",
            "iou": skynet.iou - d_iou,
            "fps": skynet.fps * (1 + 8.0 * d_iou),
            "power_w": skynet.power_w,
        }
        scored = score_entries([variant] + others, track,
                               field_energy=e_bar)
        ts = next(s for s in scored if "SkyNet" in s.name)
        wins = "yes" if scored[0].name == variant["name"] else "no"
        rows.append((d_iou, variant["iou"], variant["fps"],
                     ts.total_score, wins))
    return rows


def test_score_sensitivity(benchmark):
    gpu_rows, fpga_rows = benchmark.pedantic(
        lambda: (sweep("gpu"), sweep("fpga")), rounds=1, iterations=1
    )
    for name, rows in (("GPU", gpu_rows), ("FPGA", fpga_rows)):
        print_table(
            f"Eq. (5) sensitivity — {name} track: trading IoU for FPS",
            ["IoU sacrificed", "IoU", "FPS", "total score", "still wins?"],
            [[f"{d:.2f}", f"{iou:.3f}", f"{fps:.1f}", f"{ts:.3f}", w]
             for d, iou, fps, ts, w in rows],
        )
    # accuracy dominates: the untraded operating point scores highest
    for rows in (gpu_rows, fpga_rows):
        scores = [r[3] for r in rows]
        assert scores[0] == max(scores)
        # large accuracy sacrifices lose the track despite huge FPS
        assert rows[-1][4] == "no" or scores[-1] < scores[0]
    # the effect is stronger on the GPU track (log base 10 damps the
    # energy reward more than the FPGA track's log base 2)
    gpu_drop = gpu_rows[0][3] - gpu_rows[-1][3]
    fpga_drop = fpga_rows[0][3] - fpga_rows[-1][3]
    assert gpu_drop > fpga_drop


if __name__ == "__main__":
    print(sweep("gpu"))
    print(sweep("fpga"))
