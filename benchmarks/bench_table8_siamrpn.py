"""Table 8 — SiamRPN++ on GOT-10K with different backbones.

Same tracker head, same training budget; only the backbone changes
(AlexNet / ResNet-50 / SkyNet).  The paper's shape: SkyNet's accuracy is
on par with ResNet-50 (AO 0.364 vs 0.365) while running 1.60x faster;
AlexNet is the fastest but least accurate.  Accuracy here is measured on
the synthetic GOT-10K stand-in; FPS comes from the 1080Ti tracker-speed
model at the paper's full-scale widths and 255x255 search windows.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest
from common import print_table, tracking_data

from repro.core import SkyNetBackbone
from repro.tracking import (
    SiamRPN,
    SiamRPNTracker,
    SiameseTrainer,
    TrackTrainConfig,
    TrackerSpeedModel,
    evaluate_tracker,
)
from repro.zoo import alexnet_backbone, resnet50

PAPER = {
    "AlexNet": (0.354, 0.385, 0.101, 52.36),
    "ResNet-50": (0.365, 0.411, 0.115, 25.90),
    "SkyNet": (0.364, 0.391, 0.116, 41.22),
}
TRAIN_STEPS = 120
# miniature training backbones (full-width ones feed the speed model)
BACKBONES = {
    "AlexNet": lambda rng: alexnet_backbone(0.25, rng=rng),
    "ResNet-50": lambda rng: resnet50(0.125, rng=rng),
    "SkyNet": lambda rng: SkyNetBackbone("C", width_mult=0.25, rng=rng),
}
FULL_BACKBONES = {
    "AlexNet": lambda: alexnet_backbone(1.0),
    "ResNet-50": lambda: resnet50(1.0),
    "SkyNet": lambda: SkyNetBackbone("C"),
}


@lru_cache(maxsize=None)
def run_table8():
    train, test = tracking_data()
    speed = TrackerSpeedModel()
    results = {}
    for name, factory in BACKBONES.items():
        model = SiamRPN(factory(np.random.default_rng(0)), feat_ch=16,
                        rng=np.random.default_rng(1))
        trainer = SiameseTrainer(
            model, TrackTrainConfig(steps=TRAIN_STEPS, batch_size=8,
                                    lr=2e-3)
        )
        trainer.fit(train)
        scores = evaluate_tracker(SiamRPNTracker(model), test)
        fps = speed.fps(FULL_BACKBONES[name]())
        results[name] = (scores, fps)
    return results


def test_table8_siamrpn_backbones(benchmark):
    results = benchmark.pedantic(run_table8, rounds=1, iterations=1)
    rows = []
    for name, (scores, fps) in results.items():
        p_ao, p_sr50, p_sr75, p_fps = PAPER[name]
        rows.append(
            [name, f"{scores.ao:.3f}", f"{scores.sr50:.3f}",
             f"{scores.sr75:.3f}", f"{fps:.2f}",
             f"{p_ao:.3f}/{p_fps:.2f}"]
        )
    print_table(
        "Table 8 — SiamRPN++ backbones on GOT-10K "
        "(paper column: AO/FPS)",
        ["backbone", "AO", "SR0.50", "SR0.75", "FPS (model)",
         "paper AO/FPS"],
        rows,
    )
    ao = {n: r[0].ao for n, r in results.items()}
    fps = {n: r[1] for n, r in results.items()}
    # speed shape: AlexNet > SkyNet > ResNet-50, at the paper's values
    assert fps["AlexNet"] > fps["SkyNet"] > fps["ResNet-50"]
    assert fps["SkyNet"] / fps["ResNet-50"] == pytest.approx(1.60, rel=0.12)
    # accuracy shape: SkyNet is competitive with the much larger
    # ResNet-50 (within a few AO points) and all trackers track
    assert ao["SkyNet"] >= ao["ResNet-50"] - 0.08
    assert min(ao.values()) > 0.15


if __name__ == "__main__":
    for name, (scores, fps) in run_table8().items():
        print(f"{name:10s} AO {scores.ao:.3f} SR50 {scores.sr50:.3f} "
              f"SR75 {scores.sr75:.3f} FPS {fps:.1f}")
