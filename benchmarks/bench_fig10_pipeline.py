"""Figure 10 / Section 6.3 — system-level pipeline: serial vs overlapped.

Reproduces the TX2 system study: running fetch → pre-process →
inference → post-process serially per frame vs the optimized schedule
(batched inference, fetch+pre-process merged onto worker threads, all
stages pipelined).  The paper reports a 3.35x speedup and a 67.33 FPS
peak; our simulator, fed the calibrated stage costs, lands on both
within model tolerance.
"""

from __future__ import annotations

import pytest
from common import contest_descriptor, print_table

from repro.contest.evaluation import system_schedule
from repro.core import SkyNetBackbone
from repro.hardware.gpu import GpuLatencyModel
from repro.hardware.spec import TX2

BATCH = 4


def run_schedule():
    desc = contest_descriptor(SkyNetBackbone("C"))
    batch_ms = GpuLatencyModel(TX2, batch=BATCH).network_latency_ms(desc)
    single_ms = GpuLatencyModel(TX2, batch=1).network_latency_ms(desc)
    return system_schedule(batch_ms, single_ms, BATCH)


def test_fig10_pipeline_speedup(benchmark):
    serial_fps, piped_fps, speedup = benchmark.pedantic(
        run_schedule, rounds=1, iterations=1
    )
    rows = [
        ["serial, batch 1 (4 steps)", f"{serial_fps:.2f}", "-"],
        ["merged + threaded + pipelined", f"{piped_fps:.2f}",
         f"{speedup:.2f}x"],
    ]
    print_table(
        "Fig. 10 — TX2 system schedule (paper: 3.35x speedup, 67.33 FPS)",
        ["schedule", "FPS", "speedup"],
        rows,
    )
    assert speedup == pytest.approx(3.35, rel=0.05)
    assert piped_fps == pytest.approx(67.33, rel=0.05)


def test_fig10_batching_contributes(benchmark):
    """Ablation: without batching the pipeline cannot reach the peak."""

    def run_no_batch():
        desc = contest_descriptor(SkyNetBackbone("C"))
        single_ms = GpuLatencyModel(TX2, batch=1).network_latency_ms(desc)
        return system_schedule(single_ms, single_ms, 1)

    _, piped_b1, _ = benchmark.pedantic(run_no_batch, rounds=1, iterations=1)
    _, piped_b4, _ = run_schedule()
    assert piped_b4 > piped_b1


if __name__ == "__main__":
    s, p, sp = run_schedule()
    print(f"serial {s:.2f} FPS, pipelined {p:.2f} FPS, speedup {sp:.2f}x")
