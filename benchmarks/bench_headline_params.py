"""Headline claims (Sections 1/7) — parameter size and tracker speedups.

"Implementations using our SkyNet as the backbone DNN are 1.60X and
1.73X faster with better or similar accuracy ... and 37.20X smaller in
terms of parameter size" (vs ResNet-50, on a 1080Ti).

The parameter ratio compares the tracker *backbones*; the paper's 37.20x
corresponds to the SkyNet variant used in the tracker — our model C
backbone gives a ratio in the same several-dozen range, reported below.
"""

from __future__ import annotations

import pytest
from common import print_table

from repro.core import SkyNetBackbone
from repro.hardware.profiler import compare_networks
from repro.tracking import TrackerSpeedModel
from repro.zoo import resnet50


def run_headline():
    sky = SkyNetBackbone("C")
    r50 = resnet50(1.0)
    rows = compare_networks(
        [sky.layer_descriptors((255, 255)), r50.layer_descriptors((255, 255))],
        baseline=0,
    )
    speed = TrackerSpeedModel()
    rpn_speedup = speed.fps(sky) / speed.fps(r50)
    mask_speedup = speed.fps(sky, with_mask=True) / speed.fps(
        r50, with_mask=True
    )
    return rows, rpn_speedup, mask_speedup


def test_headline_claims(benchmark):
    rows, rpn_speedup, mask_speedup = benchmark.pedantic(
        run_headline, rounds=1, iterations=1
    )
    param_ratio = rows[1]["params_vs_base"]
    print_table(
        "Headline — SkyNet vs ResNet-50 backbone",
        ["metric", "repro", "paper"],
        [
            ["parameter ratio (R50 / SkyNet)", f"{param_ratio:.1f}x",
             "37.20x"],
            ["SiamRPN++ speedup", f"{rpn_speedup:.2f}x", "1.60x"],
            ["SiamMask speedup", f"{mask_speedup:.2f}x", "1.73x"],
        ],
    )
    # the parameter gap is of the right order (tens of times smaller)
    assert param_ratio > 30
    assert rpn_speedup == pytest.approx(1.60, rel=0.12)
    assert mask_speedup == pytest.approx(1.73, rel=0.15)


if __name__ == "__main__":
    print(run_headline())
