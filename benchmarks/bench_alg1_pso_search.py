"""Algorithm 1 / Fig. 3 — the bottom-up flow's search stage (ablation).

The paper does not report a search-convergence figure, but the PSO
search is its central mechanism; this bench runs the group-based PSO on
the synthetic task against a random-search baseline with the *same
evaluation budget* and reports the best Eq.-(1) fitness per method, plus
the full three-stage flow outcome.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from common import print_table

from repro.core import (
    BottomUpFlow,
    FitnessFunction,
    FlowConfig,
    GroupPSO,
    PSOConfig,
    bundle_by_name,
    random_dna,
)
from repro.datasets import make_dacsdc_splits

INPUT_HW = (32, 64)
PSO_CFG = PSOConfig(
    particles_per_group=3,
    iterations=3,
    epochs_base=1,
    epochs_step=1,
    depth=5,
    n_pools=3,
    channel_choices=(4, 8, 12, 16, 24),
)
BUNDLES = [bundle_by_name("dw3-pw"), bundle_by_name("conv3")]


@lru_cache(maxsize=None)
def search_data():
    return make_dacsdc_splits(96, 24, image_hw=INPUT_HW, seed=31)


def make_flow() -> BottomUpFlow:
    train, val = search_data()
    return BottomUpFlow(
        train, val,
        config=FlowConfig(pso=PSO_CFG, sketch_epochs=1, final_epochs=4),
        catalog=tuple(BUNDLES),
    )


@lru_cache(maxsize=None)
def run_search_comparison():
    flow = make_flow()
    fitness = FitnessFunction()

    pso = GroupPSO(
        BUNDLES,
        accuracy_fn=lambda dna, ep: flow.quick_accuracy(
            dna, ep, np.random.default_rng(0)
        ),
        fitness_fn=fitness,
        config=PSO_CFG,
        input_hw=INPUT_HW,
    )
    pso_result = pso.search(np.random.default_rng(42))

    # random search with a matched evaluation budget
    budget = (
        len(BUNDLES) * PSO_CFG.particles_per_group * PSO_CFG.iterations
    )
    rng = np.random.default_rng(43)
    best_random = -np.inf
    for i in range(budget):
        bundle = BUNDLES[i % len(BUNDLES)]
        dna = random_dna(bundle, depth=PSO_CFG.depth,
                         n_pools=PSO_CFG.n_pools,
                         channel_choices=PSO_CFG.channel_choices, rng=rng)
        acc = flow.quick_accuracy(dna, PSO_CFG.epochs_base,
                                  np.random.default_rng(0))
        fit = fitness(acc, dna.descriptor(INPUT_HW))
        best_random = max(best_random, fit)
    return pso_result, best_random


def test_alg1_pso_vs_random(benchmark):
    pso_result, best_random = benchmark.pedantic(
        run_search_comparison, rounds=1, iterations=1
    )
    history = [
        [h["iteration"], h["epochs"], f"{h['global_best_fitness']:.3f}"]
        for h in pso_result.history
    ]
    print_table(
        "Algorithm 1 — PSO convergence (global best per iteration)",
        ["iteration", "train epochs", "best fitness"],
        history,
    )
    print_table(
        "PSO vs random search (equal budget)",
        ["method", "best Eq.(1) fitness"],
        [["group-based PSO", f"{pso_result.global_best.fitness:.3f}"],
         ["random search", f"{best_random:.3f}"]],
    )
    fits = [h["global_best_fitness"] for h in pso_result.history]
    # the global best is monotone by construction and must improve or
    # at least hold across iterations
    assert all(b >= a - 1e-12 for a, b in zip(fits, fits[1:]))
    # with a matched budget, guided search should not lose badly
    assert pso_result.global_best.fitness >= best_random - 0.05


def test_alg1_full_flow(benchmark):
    """The complete 3-stage flow runs end to end and applies Stage 3."""
    flow = make_flow()
    result = benchmark.pedantic(
        lambda: flow.run(np.random.default_rng(7)), rounds=1, iterations=1
    )
    rows = [
        [e.spec.name, f"{e.accuracy:.3f}", f"{e.latency_ms:.2f}",
         "yes" if e.on_frontier else "no"]
        for e in result.stage1
    ]
    print_table(
        "Stage 1 — Bundle evaluation (accuracy vs FPGA latency)",
        ["bundle", "sketch IoU", "latency (ms)", "Pareto"],
        rows,
    )
    print(f"\nStage 2 winner: {result.stage2.best_dna.bundle.name} "
          f"channels={result.stage2.best_dna.channels}")
    print(f"Stage 3 final: bypass={result.final_dna.bypass}, "
          f"act={result.final_dna.activation}, IoU={result.final_iou:.3f}")
    assert result.final_dna.bypass
    assert result.final_dna.activation == "relu6"
    assert result.final_iou >= 0.0


if __name__ == "__main__":
    pso_result, best_random = run_search_comparison()
    print("PSO best:", pso_result.global_best.fitness,
          "random best:", best_random)
