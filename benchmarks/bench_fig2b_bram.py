"""Figure 2(b) — BRAM usage vs input resize factor at FM12..FM16.

The paper's motivational study: shrinking the input keeps accuracy
within 1% but BRAM allocation only drops when the (power-of-two) buffer
depth boundary is crossed — "save half memory when the factor is smaller
than 0.9" in their AlexNet accelerator; our model's cliff sits at the
same boundary mechanism (measured crossover recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np
from common import print_table

from repro.hardware.fpga import fm_buffer_bram36

RESIZE_FACTORS = (1.00, 0.95, 0.90, 0.85, 0.80, 0.78, 0.75, 0.70)
FM_BITS = (12, 13, 14, 15, 16)
IMAGE_HW = (224, 224)  # the motivational study's AlexNet input


def sweep() -> dict[int, list[int]]:
    return {
        bits: [
            fm_buffer_bram36(IMAGE_HW, bits, resize_factor=r)
            for r in RESIZE_FACTORS
        ]
        for bits in FM_BITS
    }


def test_fig2b_bram_vs_resize(benchmark):
    result = benchmark.pedantic(sweep, rounds=3, iterations=1)
    rows = [
        [f"FM{bits}"] + result[bits] for bits in FM_BITS
    ]
    print_table(
        "Fig. 2(b) — FM-buffer BRAM36 vs input resize factor",
        ["config"] + [f"r={r:.2f}" for r in RESIZE_FACTORS],
        rows,
    )
    for bits in FM_BITS:
        vals = result[bits]
        # monotone non-increasing as the input shrinks
        assert all(b <= a for a, b in zip(vals, vals[1:]))
        # the paper's effect: below the boundary the allocation
        # (roughly) halves — ceil rounding leaves a block or two
        assert min(vals) <= vals[0] * 0.55
    # larger FM precision never uses fewer BRAMs at equal resize
    for i, r in enumerate(RESIZE_FACTORS):
        col = [result[b][i] for b in FM_BITS]
        assert all(b >= a for a, b in zip(col, col[1:]))


def crossover_factor(bits: int = 14) -> float:
    """The resize factor at which allocation first halves."""
    base = fm_buffer_bram36(IMAGE_HW, bits, 1.0)
    for r in np.arange(1.0, 0.5, -0.01):
        if fm_buffer_bram36(IMAGE_HW, bits, float(r)) <= base / 2:
            return float(r)
    return 0.5


if __name__ == "__main__":
    res = sweep()
    print_table(
        "Fig. 2(b)",
        ["config"] + [f"r={r:.2f}" for r in RESIZE_FACTORS],
        [[f"FM{b}"] + res[b] for b in FM_BITS],
    )
    print(f"halving crossover (FM14): r = {crossover_factor():.2f}")
