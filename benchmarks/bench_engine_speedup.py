"""Compiled inference engine vs eager autograd forward (Section 6.3).

The paper's deployments never run the training graph: TX2 executes a
fused, statically-allocated inference plan.  ``repro.nn.engine`` is this
codebase's counterpart — BN folding, Bundle fusion, and a reusable
buffer arena — and this bench measures what that buys over the eager
``Module.forward`` path (under ``no_grad``) at the deployment
resolution, for all three SkyNet configs.

Run as a script to (re)write ``BENCH_engine.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_engine_speedup.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from common import CONTEST_HW, print_table

from repro.core import SkyNetBackbone
from repro.nn import Tensor, no_grad
from repro.nn.engine import compile_net

CONFIGS = ("A", "B", "C")
MIN_SECONDS = 1.0  # per timing loop


def _time_loop(fn, min_seconds: float = MIN_SECONDS) -> float:
    """Mean seconds per call, timed for at least ``min_seconds``."""
    fn()  # warm up (arena allocation, BLAS thread pools)
    t0 = time.perf_counter()
    n = 0
    while time.perf_counter() - t0 < min_seconds:
        fn()
        n += 1
    return (time.perf_counter() - t0) / n


def run_speedups(min_seconds: float = MIN_SECONDS) -> dict:
    rng = np.random.default_rng(0)
    h, w = CONTEST_HW
    x = rng.normal(0, 1, (1, 3, h, w)).astype(np.float32)
    results = {}
    for config in CONFIGS:
        bb = SkyNetBackbone(config, rng=np.random.default_rng(1))
        bb.eval()
        net = compile_net(bb)
        np.testing.assert_allclose(  # speedup must not cost correctness
            net(x), _eager_forward(bb, x), atol=1e-5
        )
        eager_s = _time_loop(lambda: _eager_forward(bb, x), min_seconds)
        compiled_s = _time_loop(lambda: net(x), min_seconds)
        results[config] = {
            "eager_ms": eager_s * 1e3,
            "compiled_ms": compiled_s * 1e3,
            "speedup": eager_s / compiled_s,
            "kernels": len(net),
            "arena_mb": net.arena.nbytes() / 1e6,
        }
    return results


def _eager_forward(bb, x: np.ndarray) -> np.ndarray:
    with no_grad():
        return bb(Tensor(x)).data


def _print(results: dict) -> None:
    rows = [
        [f"SkyNet-{c}", f"{r['eager_ms']:.1f}", f"{r['compiled_ms']:.1f}",
         f"{r['speedup']:.2f}x", r["kernels"], f"{r['arena_mb']:.1f}"]
        for c, r in results.items()
    ]
    print_table(
        f"Eager vs compiled engine @ {CONTEST_HW[0]}x{CONTEST_HW[1]}",
        ["config", "eager ms", "compiled ms", "speedup", "kernels",
         "arena MB"],
        rows,
    )


def test_engine_speedup(benchmark):
    results = benchmark.pedantic(
        lambda: run_speedups(min_seconds=0.3), rounds=1, iterations=1
    )
    _print(results)
    # ISSUE acceptance: >= 2x single-image speedup on SkyNet-A.  Leave
    # headroom below the measured ~3.5x so CI machine jitter cannot flake.
    assert results["A"]["speedup"] >= 2.0
    for config in CONFIGS:
        assert results[config]["speedup"] > 1.0


if __name__ == "__main__":
    measured = run_speedups()
    _print(measured)
    payload = {
        "bench": "engine_speedup",
        "input_hw": list(CONTEST_HW),
        "batch": 1,
        "results": measured,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
