"""Dynamic-batching server throughput: thread vs process workers.

The paper saturates its accelerators by overlapping work: the TX2
pipelines four system stages, the Ultra96 batches several images per
accelerator call (Sec. 5).  ``repro.serve`` applies the same lever to a
request stream, and this bench measures both of its scaling axes on
SkyNet-A at the deployment resolution:

* **Batching** — under concurrent load the batcher coalesces queued
  requests and flushes on size.  ``speedup_batch8`` is the classic
  dynamic-batching ratio against closed-loop single-request serving on
  the same config.  Historical note: this ratio was ~2.1x while a lone
  request sat out ``max_wait_ms`` waiting for batchmates; the
  lone-request immediate flush (PR 7) removed that self-inflicted tax
  from the baseline arm, so the ratio honestly collapsed to ~1.05x and
  what remains is the real batched-GEMM win, visible in
  ``speedup_vs_serial``.
* **Worker parallelism** — the sweep runs every ``worker_backend``
  (thread vs process) x workers x batch cell through the same offered
  load.  Thread workers share the GIL; process workers each own an
  interpreter + engine with shared-memory tensor transport
  (:mod:`repro.serve.procpool`), so on a multi-core host they are the
  only arm that can beat the bare serial loop.

Honesty notes (recorded in BENCH_serve.json):

* ``serial_rps`` is the no-server baseline (a bare ``Session.run``
  loop) and every arm is reported as absolute req/s against it.
  ``host_cpus`` is recorded because the verdict depends on it: on a
  1-core host *no* worker backend can beat the serial loop — the server
  buys the async API, bounded queue, deadlines and shedding, not
  throughput — and the perf gate only enforces
  ``process.speedup_vs_serial >= 1.0`` on multi-core hosts.
* Since the batched im2col engine work (PR 7), a batch-8 forward is
  *faster* than 8 batch-1 forwards, so the server runs untiled
  (``microbatch=0``; earlier baselines tiled with ``microbatch=1``).
* Each arm is best-of-``reps`` (the host's timing is noisy) and every
  backend's outputs are checked against ``Session.run`` to 1e-6.

Run as a script to (re)write ``BENCH_serve.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np
from common import CONTEST_HW, WIDTH, print_table

from repro.core import SkyNetBackbone
from repro.detection import Detector
from repro.runtime import ServeConfig, Session, SessionConfig

BATCH_SIZES = (1, 2, 4, 8)  # thread x 1-worker batching curve
SWEEP_BACKENDS = ("thread", "process")
SWEEP_WORKERS = (1, 2)
SWEEP_BATCHES = (4, 8)
MAX_WAIT_MS = 10.0
CONCURRENCY = 8  # client threads offering load
REQUESTS = 64
REPS = 3  # best-of-N per arm: the host's timing is noisy


def _detector() -> Detector:
    det = Detector(SkyNetBackbone(
        "A", width_mult=WIDTH, rng=np.random.default_rng(1)
    ))
    det.eval()
    return det


def _frames(n: int) -> list[np.ndarray]:
    rng = np.random.default_rng(0)
    h, w = CONTEST_HW
    return [rng.normal(0, 1, (3, h, w)).astype(np.float32)
            for _ in range(n)]


def _offered_load_rps(session: Session, frames: list[np.ndarray],
                      concurrency: int) -> tuple[float, float, list]:
    """Throughput with ``concurrency`` clients keeping the queue warm.

    Returns (requests/s, mean batch size, results in frame order).
    """
    futures: list = [None] * len(frames)

    def client(start: int) -> None:
        for i in range(start, len(frames), concurrency):
            futures[i] = session.submit(frames[i])

    t0 = time.perf_counter()
    clients = [threading.Thread(target=client, args=(c,), daemon=True)
               for c in range(concurrency)]
    for t in clients:
        t.start()
    for t in clients:
        t.join()
    results = [f.result(timeout=120.0) for f in futures]
    wall = time.perf_counter() - t0
    assert all(r.ok for r in results), "light load must not shed/timeout"
    return len(frames) / wall, session.server.stats.mean_batch_size(), results


def _closed_loop_rps(session: Session, frames: list[np.ndarray]) -> float:
    """One request in flight at a time (the single-request baseline)."""
    t0 = time.perf_counter()
    for frame in frames:
        result = session.submit(frame).result(timeout=120.0)
        assert result.ok
    return len(frames) / (time.perf_counter() - t0)


def _best_arm(session: Session, frames, reps: int, reference) -> dict:
    """Best-of-reps offered load on one server config, outputs checked."""
    best = {"rps": 0.0, "mean_batch_size": 0.0}
    for _ in range(reps):
        rps, mean_batch, results = _offered_load_rps(
            session, frames, CONCURRENCY
        )
        if rps > best["rps"]:
            best = {"rps": rps, "mean_batch_size": mean_batch}
    for got, want in zip(results, reference):
        np.testing.assert_allclose(got.value, want, atol=1e-6)
    return best


def run_throughput(requests: int = REQUESTS, reps: int = REPS,
                   sweep: bool = True) -> dict:
    detector = _detector()
    frames = _frames(requests)
    config = SessionConfig()  # untiled: batched kernels beat microbatching
    h, w = CONTEST_HW

    # no-server baseline + reference outputs for the equivalence check
    base = Session.load(detector, config)
    base.run(frames[0])  # warm up
    serial_rps = 0.0
    for _ in range(reps):
        t0 = time.perf_counter()
        reference = [base.run(f) for f in frames]
        serial_rps = max(serial_rps,
                         requests / (time.perf_counter() - t0))

    # batching curve: thread backend, 1 worker
    by_batch = {}
    for batch_size in BATCH_SIZES:
        serve = ServeConfig(queue_depth=requests,
                            max_batch_size=batch_size,
                            max_wait_ms=MAX_WAIT_MS)
        with Session.load(detector, config, serve=serve,
                          warmup=(batch_size, 3, h, w)) as session:
            by_batch[batch_size] = _best_arm(session, frames, reps,
                                             reference)

    # worker_backend x workers x batch sweep
    cells = []
    if sweep:
        for backend in SWEEP_BACKENDS:
            for workers in SWEEP_WORKERS:
                for batch_size in SWEEP_BATCHES:
                    serve = ServeConfig(queue_depth=requests,
                                        max_batch_size=batch_size,
                                        max_wait_ms=MAX_WAIT_MS,
                                        num_workers=workers,
                                        worker_backend=backend)
                    with Session.load(detector, config, serve=serve,
                                      warmup=(batch_size, 3, h, w)
                                      ) as session:
                        arm = _best_arm(session, frames, reps, reference)
                        stats = session.server.stats.snapshot()
                        assert stats["fallback_batches"] == 0, (
                            f"{backend} arm ran on the fallback runner")
                        if backend == "process":
                            pool = session.health()["procpool"]
                            assert pool["spawned"] >= workers
                    cells.append({"backend": backend, "workers": workers,
                                  "batch": batch_size, **arm})

    # single-request baseline on the same batch-8 server config
    serve = ServeConfig(queue_depth=requests, max_batch_size=8,
                        max_wait_ms=MAX_WAIT_MS)
    concurrency1_rps = 0.0
    with Session.load(detector, config, serve=serve,
                      warmup=(8, 3, h, w)) as session:
        for _ in range(reps):
            concurrency1_rps = max(concurrency1_rps,
                                   _closed_loop_rps(session, frames))

    batched_rps = by_batch[8]["rps"]
    out = {
        "serial_rps": serial_rps,
        "concurrency1_rps": concurrency1_rps,
        "by_batch": by_batch,
        "speedup_batch8": batched_rps / concurrency1_rps,
        "speedup_vs_serial": batched_rps / serial_rps,
    }
    if sweep:
        out["sweep"] = cells

        def best(backend):
            arm = max((c for c in cells if c["backend"] == backend),
                      key=lambda c: c["rps"])
            return {**arm, "speedup_vs_serial": arm["rps"] / serial_rps}

        out["thread"] = best("thread")
        out["process"] = best("process")
    return out


def _print(results: dict) -> None:
    rows = [
        [f"batch {b}", f"{r['rps']:.1f}", f"{r['mean_batch_size']:.2f}"]
        for b, r in results["by_batch"].items()
    ]
    for cell in results.get("sweep", ()):
        rows.append([
            f"{cell['backend']} w{cell['workers']} b{cell['batch']}",
            f"{cell['rps']:.1f}", f"{cell['mean_batch_size']:.2f}",
        ])
    rows.append(["serial (no server)", f"{results['serial_rps']:.1f}", "-"])
    rows.append(["concurrency 1", f"{results['concurrency1_rps']:.1f}",
                 "-"])
    print_table(
        f"Serve throughput, SkyNet-A @ {CONTEST_HW[0]}x{CONTEST_HW[1]} "
        f"(width {WIDTH}, wait {MAX_WAIT_MS} ms, "
        f"{CONCURRENCY} clients, {os.cpu_count()} host cpus)",
        ["mode", "req/s", "mean batch"],
        rows,
    )
    print(f"batch-8 vs single-request: "
          f"{results['speedup_batch8']:.2f}x "
          f"(vs serial loop: {results['speedup_vs_serial']:.2f}x)")
    if "process" in results:
        proc = results["process"]
        print(f"best process arm (w{proc['workers']} b{proc['batch']}): "
              f"{proc['rps']:.1f} req/s = "
              f"{proc['speedup_vs_serial']:.2f}x the serial loop")


def test_serve_throughput(benchmark):
    results = benchmark.pedantic(
        lambda: run_throughput(requests=32, reps=2, sweep=False),
        rounds=1, iterations=1,
    )
    _print(results)
    # Since the lone-request flush, closed-loop serving no longer pays
    # the wait window, so batch-8 vs single-request is ~1.05x (was
    # ~2.1x against the window-taxed baseline).  Assert batching is not
    # a regression on either axis, with jitter headroom.
    assert results["speedup_batch8"] >= 0.85
    assert results["speedup_vs_serial"] >= 0.85


if __name__ == "__main__":
    measured = run_throughput()
    _print(measured)
    payload = {
        "bench": "serve_throughput",
        "model": "SkyNet-A",
        "input_hw": list(CONTEST_HW),
        "width_mult": WIDTH,
        "max_wait_ms": MAX_WAIT_MS,
        "concurrency": CONCURRENCY,
        "requests": REQUESTS,
        "reps": REPS,
        "host_cpus": os.cpu_count(),
        "aggregation": "best-of-reps per arm (noisy shared host)",
        "microbatch": 0,
        "methodology": (
            "speedup_batch8 = throughput under concurrent offered load "
            "with dynamic batching (batch 8) / closed-loop single-"
            "request throughput on the same server config, which pays "
            "the max_wait_ms window per request.  serial_rps is the "
            "bare Session.run loop (no server); all arms are absolute "
            "req/s against it.  sweep crosses worker_backend (thread | "
            "process) x workers x batch under identical offered load; "
            "process arms assert zero fallback batches and >= workers "
            "child processes spawned, so the numbers cannot come from "
            "the parent-side breaker fallback.  On a 1-core host no "
            "arm can beat serial_rps (host_cpus records this); the "
            "perf gate enforces process.speedup_vs_serial >= 1.0 only "
            "on multi-core hosts.  All outputs checked against "
            "Session.run to atol=1e-6."
        ),
        "results": measured,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
