"""Dynamic-batching server throughput vs single-request serving.

The paper saturates its accelerators by overlapping work: the TX2
pipelines four system stages, the Ultra96 batches several images per
accelerator call (Sec. 5).  ``repro.serve`` applies the same lever to a
request stream: under concurrent load the batcher coalesces queued
requests and flushes on size, so the per-request wait window amortizes
to ~zero; a lone caller (one request in flight) pays the full
``max_wait_ms`` window on every request.  That gap — batched throughput
under load over single-in-flight throughput with the *same* server
config — is the classic dynamic-batching win this bench measures, on
SkyNet-A at the deployment resolution.

Methodology notes (recorded in BENCH_serve.json):

* ``serial_rps`` is the no-server baseline (a bare ``Session.run``
  loop).  On this host large batches are *slower* per frame than
  batch 1 (one core; the working set of a wide batch thrashes cache),
  so the server runs with ``microbatch=1``: scheduling batches while
  tiling the forward.  Against the serial baseline the server is
  roughly throughput-neutral and buys the async API, bounded queue,
  deadlines and shedding.
* ``concurrency1_rps`` submits one request at a time through the
  batch-8 server; each pays the full wait window — the single-request
  baseline of the headline ratio.

Run as a script to (re)write ``BENCH_serve.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np
from common import CONTEST_HW, WIDTH, print_table

from repro.core import SkyNetBackbone
from repro.detection import Detector
from repro.runtime import ServeConfig, Session, SessionConfig

BATCH_SIZES = (1, 2, 4, 8)
MAX_WAIT_MS = 10.0
CONCURRENCY = 8  # client threads offering load
REQUESTS = 64
REPS = 3  # best-of-N per arm: the host's timing is noisy


def _detector() -> Detector:
    det = Detector(SkyNetBackbone(
        "A", width_mult=WIDTH, rng=np.random.default_rng(1)
    ))
    det.eval()
    return det


def _frames(n: int) -> list[np.ndarray]:
    rng = np.random.default_rng(0)
    h, w = CONTEST_HW
    return [rng.normal(0, 1, (3, h, w)).astype(np.float32)
            for _ in range(n)]


def _offered_load_rps(session: Session, frames: list[np.ndarray],
                      concurrency: int) -> tuple[float, float, list]:
    """Throughput with ``concurrency`` clients keeping the queue warm.

    Returns (requests/s, mean batch size, results in frame order).
    """
    futures: list = [None] * len(frames)

    def client(start: int) -> None:
        for i in range(start, len(frames), concurrency):
            futures[i] = session.submit(frames[i])

    t0 = time.perf_counter()
    clients = [threading.Thread(target=client, args=(c,), daemon=True)
               for c in range(concurrency)]
    for t in clients:
        t.start()
    for t in clients:
        t.join()
    results = [f.result(timeout=60.0) for f in futures]
    wall = time.perf_counter() - t0
    assert all(r.ok for r in results), "light load must not shed/timeout"
    return len(frames) / wall, session.server.stats.mean_batch_size(), results


def _closed_loop_rps(session: Session, frames: list[np.ndarray]) -> float:
    """One request in flight at a time (the single-request baseline)."""
    t0 = time.perf_counter()
    for frame in frames:
        result = session.submit(frame).result(timeout=60.0)
        assert result.ok
    return len(frames) / (time.perf_counter() - t0)


def run_throughput(requests: int = REQUESTS, reps: int = REPS) -> dict:
    detector = _detector()
    frames = _frames(requests)
    config = SessionConfig(microbatch=1)

    # no-server baseline + reference outputs for the equivalence check
    base = Session.load(detector, config)
    base.run(frames[0])  # warm up
    serial_rps = 0.0
    for _ in range(reps):
        t0 = time.perf_counter()
        reference = [base.run(f) for f in frames]
        serial_rps = max(serial_rps,
                         requests / (time.perf_counter() - t0))

    by_batch = {}
    for batch_size in BATCH_SIZES:
        serve = ServeConfig(queue_depth=requests,
                            max_batch_size=batch_size,
                            max_wait_ms=MAX_WAIT_MS)
        best = {"rps": 0.0, "mean_batch_size": 0.0}
        with Session.load(detector, config, serve=serve) as session:
            session.run(frames[0])
            for _ in range(reps):
                rps, mean_batch, results = _offered_load_rps(
                    session, frames, CONCURRENCY
                )
                if rps > best["rps"]:
                    best = {"rps": rps, "mean_batch_size": mean_batch}
        for got, want in zip(results, reference):
            np.testing.assert_allclose(got.value, want, atol=1e-6)
        by_batch[batch_size] = best

    # single-request baseline on the same batch-8 server config
    serve = ServeConfig(queue_depth=requests, max_batch_size=8,
                        max_wait_ms=MAX_WAIT_MS)
    concurrency1_rps = 0.0
    with Session.load(detector, config, serve=serve) as session:
        session.run(frames[0])
        for _ in range(reps):
            concurrency1_rps = max(concurrency1_rps,
                                   _closed_loop_rps(session, frames))

    batched_rps = by_batch[8]["rps"]
    return {
        "serial_rps": serial_rps,
        "concurrency1_rps": concurrency1_rps,
        "by_batch": by_batch,
        "speedup_batch8": batched_rps / concurrency1_rps,
        "speedup_vs_serial": batched_rps / serial_rps,
    }


def _print(results: dict) -> None:
    rows = [
        [f"batch {b}", f"{r['rps']:.1f}", f"{r['mean_batch_size']:.2f}"]
        for b, r in results["by_batch"].items()
    ]
    rows.append(["serial (no server)", f"{results['serial_rps']:.1f}", "-"])
    rows.append(["concurrency 1", f"{results['concurrency1_rps']:.1f}",
                 "-"])
    print_table(
        f"Serve throughput, SkyNet-A @ {CONTEST_HW[0]}x{CONTEST_HW[1]} "
        f"(width {WIDTH}, wait {MAX_WAIT_MS} ms, "
        f"{CONCURRENCY} clients)",
        ["mode", "req/s", "mean batch"],
        rows,
    )
    print(f"batch-8 vs single-request: "
          f"{results['speedup_batch8']:.2f}x "
          f"(vs serial loop: {results['speedup_vs_serial']:.2f}x)")


def test_serve_throughput(benchmark):
    results = benchmark.pedantic(
        lambda: run_throughput(requests=32, reps=2), rounds=1, iterations=1
    )
    _print(results)
    # ISSUE acceptance: >= 1.5x over single-request throughput at batch
    # 8.  Assert with headroom below the measured ~2x so CI machine
    # jitter cannot flake.
    assert results["speedup_batch8"] >= 1.2


if __name__ == "__main__":
    measured = run_throughput()
    _print(measured)
    payload = {
        "bench": "serve_throughput",
        "model": "SkyNet-A",
        "input_hw": list(CONTEST_HW),
        "width_mult": WIDTH,
        "max_wait_ms": MAX_WAIT_MS,
        "concurrency": CONCURRENCY,
        "requests": REQUESTS,
        "reps": REPS,
        "aggregation": "best-of-reps per arm (noisy shared host)",
        "microbatch": 1,
        "methodology": (
            "speedup_batch8 = throughput under concurrent offered load "
            "with dynamic batching (batch 8) / closed-loop single-"
            "request throughput on the same server config, which pays "
            "the max_wait_ms window per request.  serial_rps is the "
            "bare Session.run loop (no server); the host is single-"
            "core, so the server runs microbatch=1 and is roughly "
            "neutral against that baseline.  Batched outputs checked "
            "against Session.run to atol=1e-6."
        ),
        "results": measured,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
