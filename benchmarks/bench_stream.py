"""Streaming serving: producer-block bound, drop policy, accounting.

The streaming layer's headline is not throughput but its robustness
contract (see ``repro.serve.stream``): the camera side never blocks,
and every accepted frame ends up processed or dropped *by policy*.
Three numbers capture it, all host-portable enough to gate:

* **accounted_ratio** — ``(processed + dropped_by_policy) / accepted``
  across every arm; exactly ``1.0`` or the conservation invariant is
  broken (gate floor: ``>= 1.0``).
* **producer_block_margin** — a 50 ms per-``put`` budget over the
  single worst ``FrameQueue.put`` observed anywhere in the run
  (``budget / max_put_block_ms``); ``>= 1.0`` means no producer ever
  blocked past the budget, even while the overload arm's consumer was
  deliberately drowning (gate floor: ``>= 1.0``).
* **overload drop_ratio** — the fraction of accepted frames the
  overload arm dropped by policy; a floor well above zero proves the
  drop-oldest path actually engaged rather than the producer having
  been throttled (gate floor: ``>= 0.02``).

Two arms:

* **steady** — N streams of the synthetic camera over a real (tiny)
  detector behind the shared dynamic-batching server, paced so the
  pipeline keeps up: the happy path, expected to process everything.
* **overload** — unpaced producers against a deliberately slow engine
  through depth-2 queues: the drowning path, expected to shed hard
  while the producer stays unblocked and accounting stays exact.

Run as a script to (re)write ``BENCH_stream.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_stream.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
from common import print_table

from repro.runtime import ServeConfig, Session, SessionConfig, StreamConfig
from repro.serve import StreamManager, SyntheticSource

STREAMS = 4
FRAMES = 48
WIDTH = 0.125
IMAGE_HW = (32, 64)
#: Per-put producer budget: a ``FrameQueue.put`` is one lock + deque
#: rotation, so 50 ms only trips when the producer was actually made to
#: wait (scheduler noise on a loaded 1-core host stays well under it).
BLOCK_BUDGET_MS = 50.0


def _sources(frames: int, interval_ms: float = 0.0) -> list:
    return [
        SyntheticSource(frames=frames, image_hw=IMAGE_HW, seed=i,
                        interval_ms=interval_ms)
        for i in range(STREAMS)
    ]


def _collect(manager: StreamManager, wall_s: float) -> dict:
    acct = manager.accounting()
    put_max = max(s.stats.snapshot()["put_block_ms_max"]
                  for s in manager.streams)
    return {
        "streams": STREAMS,
        "frames_per_stream": FRAMES,
        "accepted": acct["accepted"],
        "processed": acct["processed"],
        "dropped_by_policy": acct["dropped_by_policy"],
        "drop_ratio": acct["drop_ratio"],
        "exact": acct["exact"],
        "put_block_ms_max": put_max,
        "fps": acct["processed"] / wall_s if wall_s else 0.0,
        "wall_s": wall_s,
    }


def measure_steady() -> dict:
    """The happy path: real detector, shared server, paced cameras."""
    from repro.core import SkyNetBackbone
    from repro.detection import Detector

    det = Detector(SkyNetBackbone("C", width_mult=WIDTH,
                                  rng=np.random.default_rng(0)))
    det.eval()
    serve = ServeConfig(queue_depth=64, max_batch_size=4, max_wait_ms=1.0)
    with Session.load(det, SessionConfig(), serve=serve) as session:
        t0 = time.perf_counter()
        manager = session.open_streams(
            _sources(FRAMES, interval_ms=25.0),
            config=StreamConfig(queue_depth=8),
        )
        done = manager.join(timeout=300.0)
        wall = time.perf_counter() - t0
        out = _collect(manager, wall)
        manager.stop()
    out["done"] = done
    return out


def measure_overload() -> dict:
    """The drowning path: unpaced producers, a slow engine, tiny
    queues — drop-oldest must carry the whole overload."""
    def slow_engine(x):
        time.sleep(0.005)
        return x[0]

    t0 = time.perf_counter()
    manager = StreamManager(
        slow_engine, _sources(FRAMES),
        config=StreamConfig(queue_depth=2, pressure_high=0.6,
                            escalate_ticks=2, recover_ticks=2,
                            supervisor_interval_ms=5.0),
    )
    manager.start()
    done = manager.join(timeout=300.0)
    wall = time.perf_counter() - t0
    out = _collect(manager, wall)
    out["brownout_max_level"] = manager.controller.max_level_seen
    manager.stop()
    out["done"] = done
    return out


def run_bench() -> dict:
    steady = measure_steady()
    overload = measure_overload()
    accepted = steady["accepted"] + overload["accepted"]
    accounted = (steady["processed"] + steady["dropped_by_policy"]
                 + overload["processed"] + overload["dropped_by_policy"])
    put_max = max(steady["put_block_ms_max"], overload["put_block_ms_max"])
    return {
        "steady": steady,
        "overload": overload,
        "accounted_ratio": accounted / accepted if accepted else 0.0,
        "put_block_ms_max": put_max,
        "block_budget_ms": BLOCK_BUDGET_MS,
        "producer_block_margin": (BLOCK_BUDGET_MS / put_max
                                  if put_max else float("inf")),
    }


def _print(results: dict) -> None:
    rows = []
    for arm in ("steady", "overload"):
        r = results[arm]
        rows.append([
            arm, r["accepted"], r["processed"], r["dropped_by_policy"],
            f"{r['drop_ratio']:.3f}", f"{r['put_block_ms_max']:.3f}",
            f"{r['fps']:.0f}",
        ])
    print_table(
        f"{STREAMS} streams x {FRAMES} frames per arm "
        f"(width {WIDTH}, {IMAGE_HW[0]}x{IMAGE_HW[1]})",
        ["arm", "accepted", "processed", "dropped", "drop ratio",
         "max put ms", "fps"],
        rows,
    )
    print(f"accounted_ratio: {results['accounted_ratio']:.6f} "
          f"(must be exactly 1.0)")
    print(f"producer_block_margin: {results['producer_block_margin']:.1f}x "
          f"({BLOCK_BUDGET_MS:.0f} ms budget / "
          f"{results['put_block_ms_max']:.3f} ms worst put)")
    print(f"overload: drop ratio {results['overload']['drop_ratio']:.3f}, "
          f"brownout peaked at rung "
          f"{results['overload']['brownout_max_level']}")


def test_stream_bench(benchmark):
    results = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    _print(results)
    assert results["steady"]["done"] and results["overload"]["done"]
    # The gate's three contracts, asserted at the source.
    assert results["accounted_ratio"] == 1.0
    assert results["producer_block_margin"] >= 1.0
    assert results["overload"]["drop_ratio"] >= 0.02
    # The steady arm actually kept up (generous: CI hosts are slow).
    assert results["steady"]["processed"] > 0


if __name__ == "__main__":
    measured = run_bench()
    _print(measured)
    payload = {
        "bench": "stream",
        "streams": STREAMS,
        "frames_per_stream": FRAMES,
        "width": WIDTH,
        "input_hw": list(IMAGE_HW),
        "host_cpus": os.cpu_count() or 1,
        "aggregation": "single run per arm (contract metrics, not times)",
        "methodology": (
            "steady = N synthetic cameras paced at ~40 fps each over a "
            "real width-0.125 SkyNet-C detector behind the shared "
            "dynamic-batching server.  overload = unpaced producers "
            "against a 5 ms/frame engine through depth-2 queues, so "
            "drop-oldest must shed most of the load.  accounted_ratio "
            "= (processed + dropped_by_policy) / accepted across both "
            "arms (exactly 1.0 or frames were silently lost).  "
            "producer_block_margin = 50 ms per-put budget / the single "
            "worst FrameQueue.put wall time observed anywhere (>= 1.0 "
            "means no producer ever blocked past the budget).  "
            "overload.drop_ratio >= 0.02 proves the drop path engaged "
            "rather than the producer having been throttled."
        ),
        "results": measured,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_stream.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
