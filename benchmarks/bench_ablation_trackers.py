"""Tracker ablation — SiamFC vs SiamRPN++ vs SiamMask on one backbone.

Section 7 builds on the Siamese-tracker lineage (Tao et al. 2016 →
SiamRPN++ → SiamMask).  This bench holds the backbone fixed (SkyNet) and
swaps the tracker head, reporting AO / SR and the success curve — an
ablation of the head designs the paper's Tables 8/9 take as given.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from common import print_table, tracking_data, tracking_mask_data

from repro.core import SkyNetBackbone
from repro.tracking import (
    SiamFC,
    SiamFCTracker,
    SiamFCTrainer,
    SiamMask,
    SiamMaskTracker,
    SiamRPN,
    SiamRPNTracker,
    SiameseTrainer,
    TrackTrainConfig,
    evaluate_tracker,
    run_tracker,
    score_tracking,
    success_curve,
)

STEPS = 120


def _backbone(seed=0):
    return SkyNetBackbone("C", width_mult=0.25,
                          rng=np.random.default_rng(seed))


@lru_cache(maxsize=None)
def run_ablation():
    train, test = tracking_data()
    mask_train = tracking_mask_data()
    results = {}

    fc = SiamFC(_backbone(), feat_ch=16, rng=np.random.default_rng(1))
    SiamFCTrainer(fc, steps=STEPS, batch_size=8, lr=2e-3).fit(train)
    results["SiamFC"] = evaluate_tracker(SiamFCTracker(fc), test)

    rpn = SiamRPN(_backbone(), feat_ch=16, rng=np.random.default_rng(1))
    SiameseTrainer(rpn, TrackTrainConfig(steps=STEPS, batch_size=8,
                                         lr=2e-3)).fit(train)
    results["SiamRPN++"] = evaluate_tracker(SiamRPNTracker(rpn), test)

    mask = SiamMask(_backbone(), feat_ch=16, rng=np.random.default_rng(1))
    SiameseTrainer(mask, TrackTrainConfig(steps=STEPS, batch_size=8,
                                          lr=2e-3)).fit(mask_train)
    results["SiamMask"] = evaluate_tracker(SiamMaskTracker(mask), test)

    # success curve of the RPN tracker (the GOT-10K success plot)
    preds = run_tracker(SiamRPNTracker(rpn), test)
    scores = score_tracking(preds, [s.boxes for s in test])
    thresholds, rates = success_curve(scores.ious)
    return results, (thresholds, rates)


def test_tracker_head_ablation(benchmark):
    results, (thresholds, rates) = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    rows = [
        [name, f"{s.ao:.3f}", f"{s.sr50:.3f}", f"{s.sr75:.3f}"]
        for name, s in results.items()
    ]
    print_table(
        "Tracker heads on a SkyNet backbone (synthetic GOT-10K)",
        ["tracker", "AO", "SR0.50", "SR0.75"],
        rows,
    )
    curve_rows = [
        [f"{t:.2f}", f"{r:.3f}"]
        for t, r in zip(thresholds[::4], rates[::4])
    ]
    print_table("SiamRPN++ success curve", ["IoU threshold", "SR"],
                curve_rows)
    # every head must genuinely track
    assert all(s.ao > 0.15 for s in results.values())
    # the success curve is monotone non-increasing and anchored at SR(0)
    assert all(b <= a + 1e-12 for a, b in zip(rates, rates[1:]))
    assert rates[0] >= rates[-1]
    # AO ~ area under the success curve (GOT-10K identity)
    auc = float(np.trapezoid(rates, thresholds))
    ao = results["SiamRPN++"].ao
    assert abs(auc - ao) < 0.06


if __name__ == "__main__":
    results, _ = run_ablation()
    for k, v in results.items():
        print(k, v)
