"""Shared infrastructure for the benchmark harness.

Every ``bench_*.py`` file reproduces one table or figure of the paper
(see DESIGN.md's experiment index).  Training-based experiments run at a
laptop budget: small synthetic images, width-scaled models, few epochs —
the *shape* of each result (orderings, ratios, crossovers) is what is
reproduced, not the absolute numbers from the authors' testbed.  The
printed tables mirror the paper's rows; EXPERIMENTS.md records
paper-vs-measured values.

Heavy artifacts (datasets, the trained SkyNet) are cached per process so
benches can share them.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core import SkyNetBackbone
from repro.datasets import make_dacsdc_splits, make_got10k, make_youtubevos
from repro.detection import (
    DetectionTrainer,
    Detector,
    TrainConfig,
    YoloHead,
)
from repro.detection.anchors import kmeans_anchors
from repro.hardware.descriptor import LayerDesc, NetDescriptor
from repro.utils import print_table  # noqa: F401  (re-export for benches)

# ---- shared budgets ---------------------------------------------------- #
IMAGE_HW = (48, 96)  # miniature of the contest's 160x360 input
CONTEST_HW = (160, 320)  # deployment resolution for the hardware models
TRAIN_N, VAL_N = 256, 64
DET_EPOCHS = 12
WIDTH = 0.25


@lru_cache(maxsize=None)
def detection_data(seed: int = 1):
    """The shared synthetic DAC-SDC split."""
    return make_dacsdc_splits(TRAIN_N, VAL_N, image_hw=IMAGE_HW, seed=seed)


@lru_cache(maxsize=None)
def fitted_anchors(seed: int = 1) -> tuple[tuple[float, float], ...]:
    train, _ = detection_data(seed)
    anchors = kmeans_anchors(
        train.boxes[:, 2:4], k=2, rng=np.random.default_rng(0)
    )
    return tuple(map(tuple, anchors))


def build_detector(backbone, anchors=None, seed: int = 0) -> Detector:
    anchors = np.asarray(anchors if anchors is not None else fitted_anchors())
    return Detector(
        backbone,
        head=YoloHead(backbone.out_channels, anchors,
                      rng=np.random.default_rng(seed + 1)),
    )


def train_detector(
    detector: Detector,
    epochs: int = DET_EPOCHS,
    seed: int = 0,
    augment: bool = False,
):
    """Train under the shared protocol; returns the TrainResult."""
    train, val = detection_data()
    trainer = DetectionTrainer(
        detector,
        TrainConfig(epochs=epochs, batch_size=16, augment=augment,
                    lr=2e-3, seed=seed),
    )
    return trainer.fit(train, val, rng=np.random.default_rng(seed))


@lru_cache(maxsize=None)
def trained_skynet():
    """One trained SkyNet-C (ReLU6) shared by Tables 5/6/7 benches.

    Returns (detector, final_iou).
    """
    bb = SkyNetBackbone("C", width_mult=WIDTH, rng=np.random.default_rng(0))
    det = build_detector(bb)
    result = train_detector(det, epochs=DET_EPOCHS)
    return det, result.final_iou


def contest_descriptor(backbone) -> NetDescriptor:
    """Backbone + head descriptor at deployment resolution."""
    desc = backbone.layer_descriptors(CONTEST_HW)
    gh, gw = CONTEST_HW[0] // 8, CONTEST_HW[1] // 8
    desc.layers.append(
        LayerDesc("pwconv", backbone.out_channels, 10, gh, gw, name="head")
    )
    return desc


@lru_cache(maxsize=None)
def tracking_data(seed: int = 1):
    train = make_got10k(24, seq_len=10, image_hw=(64, 64), seed=seed)
    test = make_got10k(10, seq_len=10, image_hw=(64, 64), seed=seed + 100)
    return train, test


@lru_cache(maxsize=None)
def tracking_mask_data(seed: int = 2):
    return make_youtubevos(24, seq_len=10, image_hw=(64, 64), seed=seed)
