"""Head-to-head: the Fig. 1 top-down flow vs the Fig. 3 bottom-up flow.

Runs both design flows on the same synthetic DAC-SDC data toward the
same Ultra96 latency target and prints each flow's trajectory — the
top-down loop's compress→evaluate iterations, and the bottom-up flow's
three stages — ending with the (accuracy, latency) endpoints.

Usage::

    python examples/topdown_vs_bottomup.py [--target-ms 1.2]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import (
    BottomUpFlow,
    CompressionState,
    FlowConfig,
    PSOConfig,
    TopDownConfig,
    TopDownFlow,
    bundle_by_name,
)
from repro.datasets import make_dacsdc_splits
from repro.hardware.fpga import FpgaLatencyModel
from repro.hardware.spec import ULTRA96
from repro.utils import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--target-ms", type=float, default=1.2)
    args = parser.parse_args()
    input_hw = (32, 64)
    train, val = make_dacsdc_splits(160, 40, image_hw=input_hw, seed=23)

    print(f"latency target: {args.target_ms} ms on {ULTRA96.name}\n")

    # ------------------------- top-down ------------------------------- #
    print("TOP-DOWN (Fig. 1): ResNet-18 reference + compression loop")
    t0 = time.time()
    td = TopDownFlow(
        train,
        val,
        TopDownConfig(
            reference="resnet18",
            width_mult=0.25,
            initial_epochs=8,
            retrain_epochs=2,
            latency_target_ms=args.target_ms,
            schedule=(
                CompressionState(1.0, 0.0, None, None),
                CompressionState(1.0, 0.4, 12, 10),
                CompressionState(0.85, 0.6, 11, 9),
                CompressionState(0.75, 0.75, 10, 9),
            ),
        ),
    ).run(np.random.default_rng(0))
    print(format_table(
        ["iter", "compression state", "IoU", "latency (ms)", "target met"],
        [[h["iteration"], h["state"], f"{h['iou']:.3f}",
          f"{h['latency_ms']:.2f}", "yes" if h["met_target"] else "no"]
         for h in td.history],
    ))
    print(f"top-down finished in {time.time() - t0:.0f}s after "
          f"{td.iterations} software/hardware iterations\n")

    # ------------------------- bottom-up ------------------------------ #
    print("BOTTOM-UP (Fig. 3): Bundles -> PSO -> feature addition")
    t0 = time.time()
    flow = BottomUpFlow(
        train,
        val,
        config=FlowConfig(
            sketch_channels=(8, 16, 24, 32),
            sketch_epochs=2,
            max_selected_bundles=2,
            pso=PSOConfig(particles_per_group=3, iterations=2,
                          epochs_base=1, epochs_step=1, depth=5, n_pools=3,
                          channel_choices=(4, 8, 12, 16, 24, 32)),
            final_epochs=16,
        ),
        catalog=(bundle_by_name("dw3-pw"), bundle_by_name("conv3"),
                 bundle_by_name("pw")),
    )
    bu = flow.run(np.random.default_rng(1))
    bu_latency = FpgaLatencyModel(ULTRA96, batch=1).per_frame_latency_ms(
        bu.final_dna.descriptor(input_hw)
    )
    print(f"winning bundle: {bu.final_dna.bundle.name}, "
          f"channels={bu.final_dna.channels}")
    print(f"bottom-up finished in {time.time() - t0:.0f}s "
          f"(one pass, hardware-aware throughout)\n")

    # ------------------------- verdict -------------------------------- #
    print(format_table(
        ["flow", "IoU", "latency (ms)", "sw/hw iterations"],
        [["top-down", f"{td.iou:.3f}", f"{td.latency_ms:.2f}",
          td.iterations],
         ["bottom-up", f"{bu.final_iou:.3f}", f"{bu_latency:.2f}", 1]],
    ))


if __name__ == "__main__":
    main()
