"""Quickstart: train SkyNet on synthetic DAC-SDC data and deploy it.

Runs in a couple of minutes on a laptop:

1. generate a synthetic DAC-SDC-style dataset,
2. train a width-scaled SkyNet C (ReLU6, bypass) detector,
3. evaluate mean IoU on the held-out split,
4. estimate embedded throughput on TX2 (GPU) and Ultra96 (FPGA),
5. save a checkpoint.

Usage::

    python examples/quickstart.py [--epochs 12] [--width 0.25]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import SkyNetBackbone
from repro.datasets import make_dacsdc_splits
from repro.detection import DetectionTrainer, Detector, TrainConfig, YoloHead
from repro.detection.anchors import kmeans_anchors
from repro.hardware.descriptor import LayerDesc
from repro.hardware.fpga import FpgaLatencyModel
from repro.hardware.gpu import GpuLatencyModel
from repro.hardware.spec import TX2, ULTRA96
from repro.nn import save_model
from repro.utils import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--width", type=float, default=0.25)
    parser.add_argument("--train-images", type=int, default=320)
    parser.add_argument("--checkpoint", default="skynet_quickstart.npz")
    args = parser.parse_args()

    print("1) generating synthetic DAC-SDC data ...")
    train, val = make_dacsdc_splits(
        args.train_images, args.train_images // 5, image_hw=(48, 96), seed=1
    )
    anchors = kmeans_anchors(train.boxes[:, 2:4], k=2,
                             rng=np.random.default_rng(0))
    print(f"   {len(train)} train / {len(val)} val images, "
          f"anchors={np.round(anchors, 3).tolist()}")

    print("2) building SkyNet C (ReLU6, bypass) ...")
    backbone = SkyNetBackbone("C", width_mult=args.width,
                              rng=np.random.default_rng(0))
    detector = Detector(
        backbone, head=YoloHead(backbone.out_channels, anchors,
                                rng=np.random.default_rng(1))
    )
    print(f"   {detector.num_parameters() / 1e3:.1f}k parameters "
          f"(full-size SkyNet: 0.44M)")

    print(f"3) training for {args.epochs} epochs ...")
    t0 = time.time()
    trainer = DetectionTrainer(
        detector,
        TrainConfig(epochs=args.epochs, batch_size=16, lr=2e-3,
                    augment=True, eval_every=max(1, args.epochs // 4)),
    )
    result = trainer.fit(train, val)
    for epoch, iou in result.val_ious:
        print(f"   epoch {epoch + 1:3d}: val IoU {iou:.3f}")
    print(f"   done in {time.time() - t0:.0f}s — final IoU "
          f"{result.final_iou:.3f}")

    print("4) embedded deployment estimates (full-size SkyNet C):")
    full = SkyNetBackbone("C")
    desc = full.layer_descriptors((160, 320))
    desc.layers.append(LayerDesc("pwconv", full.out_channels, 10, 20, 40,
                                 name="head"))
    gpu = GpuLatencyModel(TX2, batch=4)
    fpga = FpgaLatencyModel(ULTRA96, batch=4, w_bits=11, fm_bits=9)
    print(format_table(
        ["device", "latency/frame", "FPS", "paper FPS"],
        [
            ["Jetson TX2 (fp32)", f"{gpu.per_frame_latency_ms(desc):.1f} ms",
             f"{gpu.fps(desc):.1f}", "67.33 (system)"],
            ["Ultra96 (W11/FM9)",
             f"{fpga.per_frame_latency_ms(desc):.1f} ms",
             f"{fpga.fps(desc):.1f}", "25.05 (system)"],
        ],
    ))

    save_model(detector, args.checkpoint)
    print(f"5) checkpoint saved to {args.checkpoint}")


if __name__ == "__main__":
    main()
