"""Object tracking with SkyNet as a Siamese backbone (Section 7).

Trains a SiamRPN++-style tracker with a SkyNet backbone on synthetic
GOT-10K-style sequences, evaluates AO / SR@0.5 / SR@0.75, prints one
tracked trajectory frame by frame, and reports the modeled 1080Ti FPS
of SkyNet vs ResNet-50 vs AlexNet trackers (Table 8's speed column).

Usage::

    python examples/tracking_demo.py [--steps 150]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import SkyNetBackbone
from repro.datasets import make_got10k
from repro.detection.boxes import box_iou, cxcywh_to_xyxy
from repro.tracking import (
    SiamRPN,
    SiamRPNTracker,
    SiameseTrainer,
    TrackTrainConfig,
    TrackerSpeedModel,
    evaluate_tracker,
)
from repro.utils import format_table
from repro.zoo import alexnet_backbone, resnet50


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=150)
    args = parser.parse_args()

    print("generating synthetic GOT-10K sequences ...")
    train = make_got10k(30, seq_len=10, image_hw=(64, 64), seed=1)
    test = make_got10k(10, seq_len=10, image_hw=(64, 64), seed=101)

    print("building SiamRPN++ with a SkyNet backbone ...")
    backbone = SkyNetBackbone("C", width_mult=0.25,
                              rng=np.random.default_rng(0))
    model = SiamRPN(backbone, feat_ch=16, rng=np.random.default_rng(1))
    print(f"  tracker parameters: {model.num_parameters() / 1e3:.1f}k")

    print(f"training for {args.steps} steps ...")
    trainer = SiameseTrainer(
        model, TrackTrainConfig(steps=args.steps, batch_size=8, lr=2e-3)
    )
    losses = trainer.fit(train)
    print(f"  loss: {losses[0]:.2f} -> {losses[-1]:.3f}")

    print("evaluating on held-out sequences (GOT-10K protocol) ...")
    scores = evaluate_tracker(SiamRPNTracker(model), test)
    print(f"  AO {scores.ao:.3f}   SR@0.50 {scores.sr50:.3f}   "
          f"SR@0.75 {scores.sr75:.3f}")

    print("\none tracked sequence:")
    tracker = SiamRPNTracker(model)
    seq = test[0]
    tracker.init(seq.frames[0], seq.boxes[0])
    rows = []
    for t in range(1, len(seq)):
        pred = tracker.track(seq.frames[t])
        iou = box_iou(cxcywh_to_xyxy(pred), cxcywh_to_xyxy(seq.boxes[t]))
        rows.append([t, np.round(pred, 3).tolist(),
                     np.round(seq.boxes[t], 3).tolist(), f"{iou:.3f}"])
    print(format_table(["frame", "predicted box", "ground truth", "IoU"],
                       rows))

    print("\nmodeled 1080Ti tracker throughput (Table 8):")
    speed = TrackerSpeedModel()
    print(format_table(
        ["backbone", "SiamRPN++ FPS", "paper"],
        [["AlexNet", f"{speed.fps(alexnet_backbone(1.0)):.1f}", "52.36"],
         ["ResNet-50", f"{speed.fps(resnet50(1.0)):.1f}", "25.90"],
         ["SkyNet", f"{speed.fps(SkyNetBackbone('C')):.1f}", "41.22"]],
    ))


if __name__ == "__main__":
    main()
