"""FPGA deployment walkthrough: quantize, size the IPs, score the entry.

Follows Section 6.4: train SkyNet, explore the Table 7 quantization
schemes, auto-configure the largest IP pool that fits the Ultra96, check
the resource budget, estimate the system throughput with batch+tiling,
and finally score the resulting entry against the published DAC-SDC'19
FPGA field with the exact contest equations.

Usage::

    python examples/fpga_deploy.py [--epochs 10]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.contest import FPGA_2019, evaluate_submission, run_track
from repro.core import SkyNetBackbone
from repro.datasets import make_dacsdc_splits
from repro.detection import DetectionTrainer, Detector, TrainConfig, YoloHead
from repro.detection.anchors import kmeans_anchors
from repro.detection.metrics import evaluate_detector
from repro.hardware.descriptor import LayerDesc
from repro.hardware.fpga import FpgaLatencyModel, plan_batch_tiling
from repro.hardware.quantization import TABLE7_SCHEMES, quantized_inference
from repro.hardware.spec import ULTRA96
from repro.utils import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=10)
    args = parser.parse_args()

    print("training SkyNet C on synthetic DAC-SDC data ...")
    train, val = make_dacsdc_splits(256, 64, image_hw=(48, 96), seed=1)
    anchors = kmeans_anchors(train.boxes[:, 2:4], k=2,
                             rng=np.random.default_rng(0))
    backbone = SkyNetBackbone("C", width_mult=0.25,
                              rng=np.random.default_rng(0))
    detector = Detector(backbone,
                        head=YoloHead(backbone.out_channels, anchors,
                                      rng=np.random.default_rng(1)))
    DetectionTrainer(
        detector, TrainConfig(epochs=args.epochs, batch_size=16,
                              augment=False, lr=2e-3)
    ).fit(train, val)

    print("\nTable 7 — quantization schemes:")
    rows = []
    for scheme in TABLE7_SCHEMES:
        with quantized_inference(detector, scheme.w_bits, scheme.fm_bits):
            iou = evaluate_detector(detector, val.images, val.boxes)
        fm, w = scheme.label
        rows.append([scheme.index, fm, w, f"{iou:.3f}"])
    print(format_table(["scheme", "FM", "Weights", "IoU"], rows))

    print("\nIP pool on Ultra96 (scheme 1: W11 / FM9):")
    full = SkyNetBackbone("C")
    desc = full.layer_descriptors((160, 320))
    desc.layers.append(LayerDesc("pwconv", full.out_channels, 10, 20, 40,
                                 name="head"))
    model = FpgaLatencyModel(ULTRA96, batch=4, w_bits=11, fm_bits=9)
    cfg = model.ip_pool.conv_ip.config
    print(f"  conv IP: pi={cfg.pi} x po={cfg.po} lanes "
          f"({cfg.lanes} multipliers)")
    rep = model.resource_report()
    print(format_table(
        ["resource", "used", "available"],
        [["DSP", rep["dsp_used"], rep["dsp_total"]],
         ["BRAM36", rep["bram36_used"], rep["bram36_total"]],
         ["LUT", rep["lut_used"], rep["lut_total"]]],
    ))
    print(f"  inference: {model.per_frame_latency_ms(desc):.1f} ms/frame "
          f"({model.fps(desc):.1f} FPS; paper system: 25.05 FPS)")

    naive, tiled = plan_batch_tiling(desc, batch=4)
    print(f"  batch+tiling: {naive.rounds} DMA rounds naive -> "
          f"{tiled.rounds} tiled (Fig. 9)")

    print("\nscoring against the DAC-SDC'19 FPGA field:")
    submission = evaluate_submission(
        detector, val, desc, ULTRA96, batch=4, utilization=0.59,
        name="SkyNet-FPGA (repro)"
    )
    scored = run_track(submission, list(FPGA_2019), "fpga")
    print(format_table(
        ["team", "IoU", "FPS", "Power(W)", "Total score"],
        [[s.name, f"{s.iou:.3f}", f"{s.fps:.2f}", f"{s.power_w:.2f}",
          f"{s.total_score:.3f}"] for s in scored],
    ))
    print("\n(note: our IoU column is measured on the synthetic stand-in "
          "and is not comparable to the real hidden test set; FPS and "
          "power are the modeled reproduction.)")


if __name__ == "__main__":
    main()
