"""Run the bottom-up hardware-aware design flow end to end (Fig. 3).

Stage 1 enumerates and fast-trains candidate Bundles and keeps the
accuracy/latency Pareto frontier; Stage 2 runs the group-based PSO
(Algorithm 1) with the Eq.-(1) fitness over TX2 + Ultra96 targets;
Stage 3 adds the bypass + feature-map reordering and switches to ReLU6,
then trains the final network.

This is the procedure that produced SkyNet, at a laptop budget.

Usage::

    python examples/nas_search.py [--iterations 2] [--particles 3]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import BottomUpFlow, FlowConfig, PSOConfig, BUNDLE_CATALOG
from repro.datasets import make_dacsdc_splits
from repro.utils import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument("--particles", type=int, default=3)
    parser.add_argument("--bundles", type=int, default=4,
                        help="catalog prefix size to enumerate in Stage 1")
    args = parser.parse_args()

    train, val = make_dacsdc_splits(128, 32, image_hw=(32, 64), seed=5)
    flow = BottomUpFlow(
        train,
        val,
        config=FlowConfig(
            sketch_channels=(8, 16, 24, 32),
            sketch_epochs=2,
            max_selected_bundles=2,
            pso=PSOConfig(
                particles_per_group=args.particles,
                iterations=args.iterations,
                epochs_base=1,
                epochs_step=1,
                depth=5,
                n_pools=3,
                channel_choices=(4, 8, 12, 16, 24, 32),
            ),
            final_epochs=8,
        ),
        catalog=BUNDLE_CATALOG[: args.bundles],
    )

    t0 = time.time()
    print("Stage 1: Bundle selection and evaluation ...")
    evals = flow.stage1_select_bundles(np.random.default_rng(0))
    print(format_table(
        ["bundle", "sketch IoU", "Ultra96 latency (ms)", "Pareto"],
        [[e.spec.name, f"{e.accuracy:.3f}", f"{e.latency_ms:.2f}",
          "*" if e.on_frontier else ""] for e in evals],
    ))
    bundles = flow.selected_bundles(evals, flow.config.max_selected_bundles)
    print(f"selected groups: {[b.name for b in bundles]}")

    print("\nStage 2: group-based PSO search (Algorithm 1) ...")
    search = flow.stage2_search(bundles, np.random.default_rng(1))
    print(format_table(
        ["iteration", "epochs", "global best fitness"],
        [[h["iteration"], h["epochs"], f"{h['global_best_fitness']:.3f}"]
         for h in search.history],
    ))
    best = search.best_dna
    print(f"winner: {best.bundle.name}, channels={best.channels}, "
          f"pools={best.pool_positions}")

    print("\nStage 3: feature addition (bypass + reordering + ReLU6) ...")
    final_dna, detector, iou = flow.stage3_finalize(
        best, np.random.default_rng(2)
    )
    print(f"final DNA: bypass={final_dna.bypass}, "
          f"activation={final_dna.activation}")
    print(f"final detector: {detector.num_parameters() / 1e3:.1f}k params, "
          f"val IoU {iou:.3f}")
    print(f"\ntotal flow time: {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()
